"""JSON serialization of :class:`~repro.metrics.collector.RunMetrics`.

The persisted form stores only the irreducible facts of a run — the
completed-job records (with their full job descriptions), utilization and
makespan — and rebuilds every aggregate through
:func:`repro.metrics.collector.summarize` on load.  Because ``summarize``
is a pure function of the records, a metrics object reconstructed from
disk is float-for-float identical to the one produced live, which is what
makes warm-cache reruns byte-identical to cold runs.

Floats round-trip exactly: Python's ``json`` emits ``repr``-style
shortest representations and parses them back to the same IEEE-754
values (NaN included, via the non-strict ``allow_nan`` default).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.metrics.collector import CompletedJob, RunMetrics, summarize
from repro.workload.job import Job
from repro.workload.table import FLOAT_COLUMNS, INT_COLUMNS

__all__ = [
    "metrics_to_payload",
    "metrics_from_payload",
    "canonical_json",
    "metrics_digest",
    "RECORD_COLUMNS",
    "RECORD_INT_COLUMNS",
    "RECORD_FLOAT_COLUMNS",
    "record_rows_to_arrays",
    "record_arrays_to_rows",
]

#: Fixed column order of a serialized job; prepended by the record's
#: start and finish times.  Must cover every ``Job`` field.
_JOB_FIELDS = (
    "job_id",
    "submit_time",
    "runtime",
    "estimate",
    "procs",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "status",
    "avg_cpu_time",
    "used_memory",
    "requested_memory",
    "preceding_job",
    "think_time",
)


def metrics_to_payload(metrics: RunMetrics) -> dict:
    """Reduce a :class:`RunMetrics` to a JSON-safe dict."""
    rows = [
        [record.start_time, record.finish_time]
        + [getattr(record.job, name) for name in _JOB_FIELDS]
        for record in metrics.records
    ]
    return {
        "utilization": metrics.utilization,
        "makespan": metrics.makespan,
        "columns": ["start_time", "finish_time", *_JOB_FIELDS],
        "records": rows,
    }


def metrics_from_payload(payload: dict) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from :func:`metrics_to_payload` output.

    Raises ``KeyError``/``TypeError``/``repro.errors.ReproError`` on
    malformed payloads; callers treat any failure as a corrupt cache
    entry.
    """
    expected_columns = ["start_time", "finish_time", *_JOB_FIELDS]
    if payload["columns"] != expected_columns:
        raise ValueError(
            f"unexpected record columns {payload['columns']!r}"
        )
    records = [
        CompletedJob(
            job=Job(**dict(zip(_JOB_FIELDS, row[2:], strict=True))),
            start_time=row[0],
            finish_time=row[1],
        )
        for row in payload["records"]
    ]
    return summarize(
        records,
        utilization=payload["utilization"],
        makespan=payload["makespan"],
    )


#: Column order of a serialized completed-job record, as emitted by
#: :func:`metrics_to_payload`.
RECORD_COLUMNS = ("start_time", "finish_time", *_JOB_FIELDS)

#: The integer-valued record columns (exactly the ``Job`` int fields —
#: start/finish times are simulation clock values, hence floats).  The
#: split mirrors :data:`repro.workload.table.INT_COLUMNS` /
#: :data:`~repro.workload.table.FLOAT_COLUMNS` so the shard backend's
#: int64/float64 arrays round-trip every value exactly, the same
#: contract ``JobTable`` already honors for workloads.
RECORD_INT_COLUMNS = tuple(c for c in RECORD_COLUMNS if c in INT_COLUMNS)
RECORD_FLOAT_COLUMNS = tuple(
    c for c in RECORD_COLUMNS if c not in INT_COLUMNS
)

assert set(RECORD_FLOAT_COLUMNS) == set(FLOAT_COLUMNS) | {"start_time", "finish_time"}


def record_rows_to_arrays(rows: list) -> dict[str, np.ndarray]:
    """Transpose record rows into one int64/float64 array per column.

    The columnar transport of a metrics payload's ``records``: the
    inverse of :func:`record_arrays_to_rows`.  Values survive exactly —
    int columns hold Python ints (int64-exact by Job validation), float
    columns are IEEE doubles already.
    """
    arrays: dict[str, np.ndarray] = {}
    n = len(rows)
    for index, name in enumerate(RECORD_COLUMNS):
        dtype = np.int64 if name in RECORD_INT_COLUMNS else np.float64
        arrays[name] = np.fromiter(
            (row[index] for row in rows), dtype=dtype, count=n
        )
    return arrays


def record_arrays_to_rows(
    arrays: dict[str, np.ndarray], start: int = 0, stop: int | None = None
) -> list[list]:
    """Rebuild record rows from column arrays (inverse transpose).

    ``ndarray.tolist`` per column yields builtin ``int``/``float``, so a
    rebuilt payload is value-identical (and digest-identical after
    decode) to the one :func:`metrics_to_payload` produced.
    """
    columns = [arrays[name][start:stop].tolist() for name in RECORD_COLUMNS]
    return [list(row) for row in zip(*columns)]


def canonical_json(payload: dict) -> str:
    """Deterministic JSON text for hashing/equality of payloads."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def metrics_digest(metrics: RunMetrics) -> str:
    """sha256 of the canonical serialized form of a metrics object.

    Two metrics objects with identical observable content have identical
    digests even when they contain NaN fields (which defeat ``==``), so
    tests use this to assert exact parallel-vs-serial equality.
    """
    text = canonical_json(metrics_to_payload(metrics))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

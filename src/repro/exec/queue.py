"""Lease-based work-stealing queue for distributed sweep execution.

:class:`CellQueue` turns a sweep's cache directory into a shared work
queue: one SQLite ``queue`` table (hosted by the store's
:class:`~repro.exec.backends.sqlite.SqliteBackend`, beside the result
tables) where each row is a cell and rows are grouped into **indivisible
lease units** by chain group — cells differing only by horizon fork a
shared simulation prefix (:mod:`repro.exec.chains`), so splitting a
chain across workers would re-simulate that prefix on every side.
Any number of worker processes — one host or many sharing a filesystem —
drain the queue by claiming leases, simulating, and committing results
into the very same database the :class:`~repro.exec.store.ResultStore`
reads.

The lease state machine (DESIGN.md section 13)::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                 │ deadline passes
       │   attempts < cap│
       └─────────────────┤
                         │ attempts >= cap, or deterministic error
                         ▼
                     poisoned

* **claim** — one ``BEGIN IMMEDIATE`` transaction leases whole groups
  (pending, or leased-but-expired: the *steal*) to an owner and bumps
  each row's attempt count; the write lock makes concurrent claims
  disjoint by construction.
* **complete** — result rows and the ``done`` flip commit in one
  transaction, so a worker killed at any instant loses at most its
  in-flight group, which the next claimant steals after the deadline.
* **poisoned** — a group that keeps dying (attempt cap) or fails
  deterministically is retired loudly instead of looping forever;
  :meth:`CellQueue.poisoned` surfaces the cells and errors, and
  :meth:`CellQueue.requeue_poisoned` gives them a fresh start.

Enqueueing is idempotent and *revival-aware*: re-enqueueing a grid
leaves in-flight rows untouched and revives ``done``/``poisoned`` rows
to pending — the caller (see :class:`~repro.exec.dist.DistExecutor`)
resolves warm cells against the store first and only enqueues genuine
misses, which is what makes a re-submitted sweep resume rather than
recompute.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.exec.backends.sqlite import SqliteBackend
from repro.exec.cell import Cell
from repro.exec.chains import plan_chains
from repro.exec.store import StoredResult, stored_payload

__all__ = [
    "CellQueue",
    "ClaimedGroup",
    "EnqueueReport",
    "PoisonedCell",
    "QueueStats",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "group_id",
]

#: Default lease duration.  Generous against the ~milliseconds a typical
#: cell simulates in, so healthy workers never lose a live lease, while
#: a killed worker's groups come back within a couple of minutes.
DEFAULT_LEASE_SECONDS = 120.0

#: Default cap on lease grants per group before it is poisoned.
DEFAULT_MAX_ATTEMPTS = 3


def group_id(cells: Sequence[Cell]) -> str:
    """Stable id of a chain group: sha256 over its sorted member keys.

    Deterministic across processes and enqueue calls — the same grid
    always plans the same groups, so re-enqueueing maps onto existing
    rows instead of inventing new units.
    """
    digest = hashlib.sha256()
    for key in sorted(cell.content_hash() for cell in cells):
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _cell_to_json(cell: Cell) -> str:
    return json.dumps(cell.to_payload(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ClaimedGroup:
    """One leased chain group: simulate all of it, then complete it."""

    group_id: str
    #: Horizon-ascending, exactly the order ``simulate_chunk_chained``
    #: wants (chains fork shortest-first).
    cells: tuple[Cell, ...]
    #: Lease grants this group has had, this one included — 1 on the
    #: first claim, more after steals/retries.
    attempts: int


@dataclass(frozen=True)
class PoisonedCell:
    """A retired cell, surfaced loudly instead of retried forever."""

    key: str
    cell: Cell | None  # None when the stored payload no longer decodes
    attempts: int
    error: str | None

    def label(self) -> str:
        return self.cell.label() if self.cell is not None else self.key[:16]


@dataclass(frozen=True)
class EnqueueReport:
    """What one :meth:`CellQueue.enqueue` call did."""

    cells: int  # distinct cells offered
    groups: int  # chain groups they plan into
    enqueued: int  # rows inserted or revived
    already_queued: int  # rows left alone (pending or leased in-flight)


@dataclass(frozen=True)
class QueueStats:
    """Queue population by lease state, in cells and groups."""

    pending_cells: int = 0
    pending_groups: int = 0
    leased_cells: int = 0
    leased_groups: int = 0
    done_cells: int = 0
    done_groups: int = 0
    poisoned_cells: int = 0
    poisoned_groups: int = 0
    #: Cells whose group needed more than one lease grant (steals and
    #: post-crash retries both land here).
    retried_cells: int = 0

    @property
    def total_cells(self) -> int:
        return (
            self.pending_cells
            + self.leased_cells
            + self.done_cells
            + self.poisoned_cells
        )

    @property
    def open_cells(self) -> int:
        """Cells still owed a result (pending or leased)."""
        return self.pending_cells + self.leased_cells

    def render(self) -> str:
        line = (
            f"queue: {self.pending_cells} pending"
            f" | {self.leased_cells} leased"
            f" | {self.done_cells} done"
            f" | {self.poisoned_cells} poisoned"
            f" (cells; {self.total_cells} total)"
        )
        if self.retried_cells:
            line += f" | {self.retried_cells} retried"
        return line


class CellQueue:
    """The typed front of the queue table in ``<queue_dir>/results.sqlite``.

    Owns the semantic layer — group planning, Cell (de)serialization,
    lease policy — and delegates all SQL to the
    :class:`~repro.exec.backends.sqlite.SqliteBackend` it wraps.  Many
    processes may hold a ``CellQueue`` on the same directory; SQLite's
    WAL mode and the backend's ``BEGIN IMMEDIATE`` claims do the
    coordination.
    """

    def __init__(
        self,
        queue_dir: str | os.PathLike,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue_dir = Path(queue_dir)
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self._backend = SqliteBackend(self.queue_dir)

    @property
    def path(self) -> Path:
        """The SQLite database the queue (and its results) live in."""
        return self._backend.path

    def close(self) -> None:
        self._backend.close()

    # -- producing work --------------------------------------------------------

    def enqueue(self, cells: Sequence[Cell]) -> EnqueueReport:
        """Queue a batch of cells as chain-group lease units.

        Callers pass genuine misses only (resolve warm cells against the
        store first); duplicates are collapsed.  In-flight rows are left
        untouched, finished/poisoned rows are revived — see the module
        docstring for why that is the resume story.
        """
        groups = plan_chains(list(dict.fromkeys(cells)))
        rows: list[tuple[str, str, str]] = []
        for group in groups:
            gid = group_id(group)
            rows.extend(
                (cell.content_hash(), gid, _cell_to_json(cell)) for cell in group
            )
        changed = self._backend.queue_enqueue(rows)
        return EnqueueReport(
            cells=len(rows),
            groups=len(groups),
            enqueued=changed,
            already_queued=len(rows) - changed,
        )

    # -- consuming work --------------------------------------------------------

    def claim(
        self,
        owner: str,
        *,
        limit_groups: int = 1,
        now: float | None = None,
    ) -> list[ClaimedGroup]:
        """Lease up to ``limit_groups`` groups to ``owner``; [] when none.

        Pending groups and expired leases (the steal path) are equally
        claimable; expired groups at the attempt cap are poisoned
        instead of returned.  ``now`` is a test seam — production
        callers let it default to wall-clock time.
        """
        rows = self._backend.queue_claim(
            owner,
            now=time.time() if now is None else now,
            lease_seconds=self.lease_seconds,
            limit_groups=limit_groups,
            max_attempts=self.max_attempts,
        )
        by_group: dict[str, list[tuple[Cell, int]]] = {}
        broken: dict[str, str] = {}
        for key, gid, cell_text, attempts in rows:
            if gid in broken:
                continue
            try:
                cell = Cell.from_payload(json.loads(cell_text))
                if cell.content_hash() != key:
                    raise ValueError("queued cell does not match its key")
            except Exception as exc:
                # A row that no longer decodes can never simulate; retire
                # the whole group loudly rather than bouncing the lease.
                broken[gid] = f"undecodable queue row: {exc}"
                continue
            by_group.setdefault(gid, []).append((cell, attempts))
        for gid, error in broken.items():
            by_group.pop(gid, None)
            self._backend.queue_fail(gid, error, poison=True)
        claimed = []
        for gid, members in by_group.items():
            members.sort(key=lambda pair: pair[0].spec.n_jobs)
            claimed.append(
                ClaimedGroup(
                    group_id=gid,
                    cells=tuple(cell for cell, _ in members),
                    attempts=max(attempts for _, attempts in members),
                )
            )
        return claimed

    def complete(
        self,
        owner: str,
        group_ids: Sequence[str],
        pairs: Sequence[tuple[Cell, StoredResult]],
    ) -> None:
        """Commit a batch of results and mark their groups done — one
        transaction, the crash-safety hinge of the whole design."""
        if not group_ids:
            return
        items = [
            (cell.content_hash(), stored_payload(cell, stored))
            for cell, stored in pairs
        ]
        self._backend.queue_complete(owner, list(group_ids), items)

    def renew(
        self,
        owner: str,
        group_ids: Sequence[str],
        *,
        now: float | None = None,
    ) -> int:
        """Extend ``owner``'s live leases on ``group_ids`` by a fresh
        lease period; returns the number of cells renewed.

        Workers call this between chain groups of a multi-group claim:
        a batch sized for milliseconds-per-cell can still outlive its
        lease when one group lands on a deep-queue condition, and
        without renewal the *unstarted* groups of the batch expire and
        get re-simulated by a thief.  Renewal only touches rows still
        leased to ``owner`` — anything already stolen stays with the
        thief (fewer renewals than cells is the caller's stolen-work
        signal).  ``now`` is a test seam, as in :meth:`claim`.
        """
        return self._backend.queue_renew(
            owner,
            list(group_ids),
            now=time.time() if now is None else now,
            lease_seconds=self.lease_seconds,
        )

    def fail(self, gid: str, error: str, *, poison: bool) -> None:
        """Report a group's simulation failure (poison or retry)."""
        self._backend.queue_fail(gid, error, poison=poison)

    def release(self, owner: str) -> int:
        """Graceful shutdown: hand ``owner``'s live leases straight back."""
        return self._backend.queue_release(owner)

    # -- observing -------------------------------------------------------------

    def stats(self) -> QueueStats:
        counts = self._backend.queue_counts()

        def take(state: str) -> tuple[int, int]:
            return counts.get(state, (0, 0))

        pending, leased = take("pending"), take("leased")
        done, poisoned = take("done"), take("poisoned")
        return QueueStats(
            pending_cells=pending[0],
            pending_groups=pending[1],
            leased_cells=leased[0],
            leased_groups=leased[1],
            done_cells=done[0],
            done_groups=done[1],
            poisoned_cells=poisoned[0],
            poisoned_groups=poisoned[1],
            retried_cells=self._backend.queue_retried_cells(),
        )

    def states_for(self, cells: Sequence[Cell]) -> dict[str, str]:
        """``content_hash -> state`` for the given cells (absent = never
        queued)."""
        return self._backend.queue_states([cell.content_hash() for cell in cells])

    def poisoned(self) -> list[PoisonedCell]:
        """Every poisoned cell, decoded where possible, with its error."""
        out = []
        for key, cell_text, attempts, error in self._backend.queue_poisoned():
            try:
                cell = Cell.from_payload(json.loads(cell_text))
            except Exception:
                cell = None
            out.append(
                PoisonedCell(key=key, cell=cell, attempts=attempts, error=error)
            )
        return out

    # -- maintenance -----------------------------------------------------------

    def clear_done(self) -> int:
        """Drop finished lease rows (results stay in the store tables)."""
        return self._backend.queue_clear_done()

    def requeue_poisoned(self) -> int:
        """Give every poisoned group a fresh pending start; returns cells."""
        return self._backend.queue_requeue_poisoned()

"""ExecConfig: the execution layer's configuration as a frozen value.

Historically the execution knobs (worker count, cache directory, chunk
size, ...) lived as keyword arguments to :func:`repro.exec.configure`,
which rebuilt a module-global executor — a grab-bag of loose globals
that cannot be inspected, compared, or threaded through code that
builds its own executors.  :class:`ExecConfig` replaces that: one
frozen, validated dataclass that every layer consumes explicitly —

* ``ExecConfig.build_store()`` / :meth:`ResultStore.from_config
  <repro.exec.store.ResultStore.from_config>` — the store's
  ``cache_dir`` / ``backend`` / ``memory_limit`` triple;
* ``ExecConfig.build_executor()`` / :meth:`CellExecutor.from_config
  <repro.exec.executor.CellExecutor.from_config>` — the full executor
  (which passes ``use_chains`` down to the chain planner);
* :func:`repro.exec.set_default_executor` — installs a config (or a
  ready executor) as the process-wide default behind
  :func:`repro.exec.run_cells`.

``configure(...)`` survives as a thin deprecation shim that builds an
``ExecConfig`` and installs it, emitting :class:`DeprecationWarning`.

Being frozen, configs are safe to share, hash into cache keys, and vary
with :meth:`ExecConfig.replace`::

    base = ExecConfig(parallel=8, cache_dir="results/")
    serial = base.replace(parallel=1)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.exec.backends import BACKEND_CHOICES
from repro.exec.store import DEFAULT_MEMORY_LIMIT

__all__ = ["ExecConfig"]


@dataclass(frozen=True)
class ExecConfig:
    """Immutable configuration for the execution layer.

    Fields mirror the knobs :class:`~repro.exec.executor.CellExecutor`
    and :class:`~repro.exec.store.ResultStore` accept; see
    :func:`repro.exec.configure`'s docstring for the semantics of each.
    Validation happens at construction, so an ``ExecConfig`` that exists
    is buildable.  ``progress`` (a callback) is excluded from equality
    and hashing.
    """

    parallel: int = 1
    cache_dir: str | Path | None = None
    max_retries: int = 1
    progress: Callable | None = field(default=None, compare=False)
    chunk_size: int | None = None
    preload_workloads: bool = True
    use_chains: bool = True
    store_backend: str = "auto"
    memory_limit: int | None = DEFAULT_MEMORY_LIMIT

    def __post_init__(self) -> None:
        if self.parallel < 1:
            raise ConfigurationError(f"parallel must be >= 1, got {self.parallel}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
        if self.store_backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"unknown store backend {self.store_backend!r}; "
                f"expected one of {sorted(BACKEND_CHOICES)}"
            )
        if self.memory_limit is not None and self.memory_limit < 1:
            raise ConfigurationError(
                f"memory_limit must be >= 1 or None, got {self.memory_limit}"
            )

    def replace(self, **changes) -> "ExecConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def build_store(self):
        """Construct the :class:`~repro.exec.store.ResultStore` this
        config describes."""
        from repro.exec.store import ResultStore

        return ResultStore.from_config(self)

    def build_executor(self):
        """Construct the :class:`~repro.exec.executor.CellExecutor`
        (store included) this config describes."""
        from repro.exec.executor import CellExecutor

        return CellExecutor.from_config(self)

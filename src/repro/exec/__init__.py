"""Parallel experiment execution: typed cells, a process-pool executor,
and a persistent result store.

The public surface:

* :class:`Cell` — the frozen, hashable unit of simulation work
  (workload spec x scheduler kind x priority x options) with a stable
  content hash;
* :class:`CellExecutor` — fans batches of cells out over worker
  processes with per-cell crash retry and deterministic result order;
* :class:`ResultStore` — layered (memory + JSON-on-disk) cache of
  per-cell :class:`~repro.metrics.collector.RunMetrics`, schema-versioned
  and corrupt-entry tolerant;
* :func:`run_cells` — the batch entry point the experiment harness uses:
  executes against the process-wide default executor;
* :class:`ExecConfig` + :func:`set_default_executor` — execution
  configuration as a frozen value, installed explicitly; this is what
  the CLI's ``--parallel`` / ``--cache-dir`` flags build.
* :func:`configure` — **deprecated** keyword-argument shim over the
  above; emits :class:`DeprecationWarning` and will be removed.

Typical use::

    from repro.exec import Cell, run_cells
    from repro.experiments.config import WorkloadSpec

    cells = [Cell.make(WorkloadSpec(seed=s), "easy", "SJF") for s in (1, 2, 3)]
    for metrics in run_cells(cells):
        print(metrics.overall.mean_bounded_slowdown)
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable

from repro.exec.backends import BACKEND_CHOICES, StoreBackend, make_backend
from repro.exec.cell import CACHE_SCHEMA_VERSION, Cell
from repro.exec.config import ExecConfig
from repro.exec.chains import ChainStats, chain_key, plan_chains, run_chain
from repro.exec.dist import DistExecutor, WorkerReport, run_worker
from repro.exec.executor import CellExecutor, ExecutionReport, simulate_cell
from repro.exec.queue import (
    CellQueue,
    ClaimedGroup,
    EnqueueReport,
    PoisonedCell,
    QueueStats,
)
from repro.exec.serialize import metrics_digest
from repro.exec.store import (
    DEFAULT_MEMORY_LIMIT,
    GcReport,
    ResultStore,
    StoredResult,
    StoreStats,
    migrate_store,
)
from repro.metrics.collector import RunMetrics

__all__ = [
    "BACKEND_CHOICES",
    "CACHE_SCHEMA_VERSION",
    "Cell",
    "CellExecutor",
    "CellQueue",
    "ChainStats",
    "ClaimedGroup",
    "DEFAULT_MEMORY_LIMIT",
    "DistExecutor",
    "EnqueueReport",
    "ExecutionReport",
    "GcReport",
    "PoisonedCell",
    "QueueStats",
    "ResultStore",
    "StoreBackend",
    "StoredResult",
    "StoreStats",
    "WorkerReport",
    "chain_key",
    "make_backend",
    "migrate_store",
    "plan_chains",
    "run_chain",
    "run_worker",
    "simulate_cell",
    "metrics_digest",
    "run_cells",
    "ExecConfig",
    "set_default_executor",
    "configure",
    "default_executor",
    "default_store",
]

_default_executor: CellExecutor | None = None


def default_executor() -> CellExecutor:
    """The process-wide executor :func:`run_cells` uses (lazily created).

    Starts out serial and memory-only; reshape it with :func:`configure`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = CellExecutor()
    return _default_executor


def default_store() -> ResultStore:
    """The result store backing the default executor."""
    return default_executor().store


def set_default_executor(config: ExecConfig | CellExecutor | None) -> CellExecutor:
    """Install the process-wide default executor and return it.

    Accepts a frozen :class:`ExecConfig` (the normal case — the executor
    and its store are built from it), a ready :class:`CellExecutor`, or
    ``None`` to reset to the lazy serial default.  The previous default's
    in-memory results are discarded.  This is the supported replacement
    for the deprecated :func:`configure`.
    """
    global _default_executor
    if config is None:
        _default_executor = None
        return default_executor()
    if isinstance(config, CellExecutor):
        _default_executor = config
    elif isinstance(config, ExecConfig):
        _default_executor = CellExecutor.from_config(config)
    else:
        raise TypeError(
            f"expected ExecConfig, CellExecutor or None, got {type(config).__name__}"
        )
    return _default_executor


def configure(
    *,
    parallel: int = 1,
    cache_dir=None,
    max_retries: int = 1,
    progress: Callable[[ExecutionReport], None] | None = None,
    chunk_size: int | None = None,
    preload_workloads: bool = True,
    use_chains: bool = True,
    store_backend: str = "auto",
    memory_limit: int | None = DEFAULT_MEMORY_LIMIT,
) -> CellExecutor:
    """Deprecated: build an :class:`ExecConfig` and call
    :func:`set_default_executor` instead.

    Kept as a thin shim for existing callers: the keyword arguments map
    one-to-one onto :class:`ExecConfig` fields (``parallel`` sets the
    worker-process count, ``cache_dir`` + ``store_backend`` +
    ``memory_limit`` shape the store, ``chunk_size`` /
    ``preload_workloads`` / ``use_chains`` tune dispatch — see the
    ``ExecConfig`` docs).  Emits :class:`DeprecationWarning` and returns
    the newly installed executor.
    """
    warnings.warn(
        "repro.exec.configure() is deprecated; build a repro.exec.ExecConfig "
        "and pass it to repro.exec.set_default_executor() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return set_default_executor(
        ExecConfig(
            parallel=parallel,
            cache_dir=cache_dir,
            max_retries=max_retries,
            progress=progress,
            chunk_size=chunk_size,
            preload_workloads=preload_workloads,
            use_chains=use_chains,
            store_backend=store_backend,
            memory_limit=memory_limit,
        )
    )


def run_cells(
    cells: Iterable[Cell], *, executor: CellExecutor | None = None
) -> list[RunMetrics]:
    """Execute a batch of cells; returns their metrics in input order.

    This is the batch entry point experiments use.  Results come from
    the executor's store when already known; misses are simulated —
    in parallel when the executor (default: the process-wide one, see
    :func:`configure`) has ``max_workers > 1``.
    """
    return (executor or default_executor()).execute(cells)

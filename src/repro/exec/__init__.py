"""Parallel experiment execution: typed cells, a process-pool executor,
and a persistent result store.

The public surface:

* :class:`Cell` — the frozen, hashable unit of simulation work
  (workload spec x scheduler kind x priority x options) with a stable
  content hash;
* :class:`CellExecutor` — fans batches of cells out over worker
  processes with per-cell crash retry and deterministic result order;
* :class:`ResultStore` — layered (memory + JSON-on-disk) cache of
  per-cell :class:`~repro.metrics.collector.RunMetrics`, schema-versioned
  and corrupt-entry tolerant;
* :func:`run_cells` — the batch entry point the experiment harness uses:
  executes against the process-wide default executor;
* :func:`configure` — rebuild the default executor (worker count, cache
  directory, progress callback); this is what the CLI's ``--parallel`` /
  ``--cache-dir`` flags call.

Typical use::

    from repro.exec import Cell, run_cells
    from repro.experiments.config import WorkloadSpec

    cells = [Cell.make(WorkloadSpec(seed=s), "easy", "SJF") for s in (1, 2, 3)]
    for metrics in run_cells(cells):
        print(metrics.overall.mean_bounded_slowdown)
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exec.backends import BACKEND_CHOICES, StoreBackend, make_backend
from repro.exec.cell import CACHE_SCHEMA_VERSION, Cell
from repro.exec.chains import ChainStats, chain_key, plan_chains, run_chain
from repro.exec.executor import CellExecutor, ExecutionReport, simulate_cell
from repro.exec.serialize import metrics_digest
from repro.exec.store import (
    DEFAULT_MEMORY_LIMIT,
    GcReport,
    ResultStore,
    StoredResult,
    StoreStats,
    migrate_store,
)
from repro.metrics.collector import RunMetrics

__all__ = [
    "BACKEND_CHOICES",
    "CACHE_SCHEMA_VERSION",
    "Cell",
    "CellExecutor",
    "ChainStats",
    "DEFAULT_MEMORY_LIMIT",
    "ExecutionReport",
    "GcReport",
    "ResultStore",
    "StoreBackend",
    "StoredResult",
    "StoreStats",
    "chain_key",
    "make_backend",
    "migrate_store",
    "plan_chains",
    "run_chain",
    "simulate_cell",
    "metrics_digest",
    "run_cells",
    "configure",
    "default_executor",
    "default_store",
]

_default_executor: CellExecutor | None = None


def default_executor() -> CellExecutor:
    """The process-wide executor :func:`run_cells` uses (lazily created).

    Starts out serial and memory-only; reshape it with :func:`configure`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = CellExecutor()
    return _default_executor


def default_store() -> ResultStore:
    """The result store backing the default executor."""
    return default_executor().store


def configure(
    *,
    parallel: int = 1,
    cache_dir=None,
    max_retries: int = 1,
    progress: Callable[[ExecutionReport], None] | None = None,
    chunk_size: int | None = None,
    preload_workloads: bool = True,
    use_chains: bool = True,
    store_backend: str = "auto",
    memory_limit: int | None = DEFAULT_MEMORY_LIMIT,
) -> CellExecutor:
    """Replace the default executor and return it.

    ``parallel`` sets the worker-process count (1 = serial),
    ``cache_dir`` enables the persistent disk layer, ``progress`` is
    invoked with the live :class:`ExecutionReport` after each completed
    cell.  ``chunk_size`` fixes the cells-per-task dispatch granularity
    (``None`` auto-sizes per batch), ``preload_workloads`` controls
    shipping pre-built workload tables to fresh workers, and
    ``use_chains`` toggles forked prefix-sharing across horizon sweeps
    (the CLI's ``--no-chains`` turns it off).  ``store_backend`` picks
    the disk layout (``auto``/``json``/``sqlite``/``shard`` — the CLI's
    ``--store-backend``) and ``memory_limit`` caps the store's
    in-process layer.  The previous default's in-memory results are
    discarded.
    """
    global _default_executor
    _default_executor = CellExecutor(
        max_workers=parallel,
        store=ResultStore(
            cache_dir=cache_dir, backend=store_backend, memory_limit=memory_limit
        ),
        max_retries=max_retries,
        progress=progress,
        chunk_size=chunk_size,
        preload_workloads=preload_workloads,
        use_chains=use_chains,
    )
    return _default_executor


def run_cells(
    cells: Iterable[Cell], *, executor: CellExecutor | None = None
) -> list[RunMetrics]:
    """Execute a batch of cells; returns their metrics in input order.

    This is the batch entry point experiments use.  Results come from
    the executor's store when already known; misses are simulated —
    in parallel when the executor (default: the process-wide one, see
    :func:`configure`) has ``max_workers > 1``.
    """
    return (executor or default_executor()).execute(cells)

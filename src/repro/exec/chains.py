"""Simulation chains: fork shared prefixes across horizon sweeps.

A characterization grid usually contains *chains* of cells that differ
only in ``spec.n_jobs`` — the same trace, seed, load scale, estimate
regime, scheduler, priority, and options at several truncation horizons
(the standard convergence check).  Because the workload generator draws
its random sequence per job, a shorter horizon's workload is an exact
prefix of the longer one's, and because an event-driven schedule is
causal (decisions at time *t* depend only on arrivals at or before *t*),
the short simulation IS a prefix of the long one.  Re-running it from
scratch is pure waste.

:func:`run_chain` exploits this with the engine's checkpoint/fork API
(DESIGN.md section 9): one *trunk* simulator runs the longest workload,
pausing at each shorter horizon's boundary; each pause is
:meth:`~repro.sim.engine.Simulator.snapshot`-ed and
:meth:`~repro.sim.engine.Simulator.resume`-d on the shorter workload,
which only has to drain the already-started tail.  A 750/1125/1500
horizon triple thus costs roughly one 1500-job simulation plus two tail
drains instead of 3375 job-lifetimes.

Safety over speed: the prefix property is *verified at runtime* (exact
job-tuple comparison against the full workload), and any mismatch — or a
:class:`~repro.errors.SimulationError` from the checkpoint machinery,
e.g. advance-reservation blockers colliding with a resumed branch — falls
back to independent per-cell simulation, counted in
:class:`ChainStats.fallbacks`.  Chained results are therefore always
byte-identical to unchained ones (pinned by
``tests/properties/test_prop_chain_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.exec.cell import Cell
from repro.exec.store import StoredResult

__all__ = [
    "ChainStats",
    "chain_key",
    "plan_chains",
    "run_chain",
    "run_chain_groups",
    "simulate_chunk_chained",
]


@dataclass
class ChainStats:
    """Counters describing how chain execution went for a batch."""

    #: Multi-cell chains executed via fork (a singleton group counts 0).
    chains: int = 0
    #: Cells answered from a forked chain (includes each chain's trunk).
    chained_cells: int = 0
    #: snapshot+resume branch points taken.
    forks: int = 0
    #: Chains that hit a prefix mismatch or a checkpoint SimulationError
    #: and re-ran their cells independently.
    fallbacks: int = 0

    def absorb(self, other: "ChainStats") -> None:
        self.chains += other.chains
        self.chained_cells += other.chained_cells
        self.forks += other.forks
        self.fallbacks += other.fallbacks


class _ChainInfeasible(Exception):
    """Internal: the chain's workloads are not exact prefixes."""


def chain_key(cell: Cell) -> tuple:
    """Grouping key: everything that identifies a cell except its horizon."""
    spec = cell.spec
    return (
        spec.trace,
        spec.seed,
        spec.load_scale,
        spec.estimate,
        cell.kind,
        cell.priority,
        cell.options,
    )


def plan_chains(cells: Sequence[Cell]) -> list[list[Cell]]:
    """Group cells into chains (horizon-ascending), preserving first-seen order.

    Input cells must already be deduplicated (the executor dedups before
    planning).  Cells with no chain partner come back as singleton groups,
    so the union of the groups is exactly the input set.
    """
    groups: dict[tuple, list[Cell]] = {}
    for cell in cells:
        groups.setdefault(chain_key(cell), []).append(cell)
    return [
        sorted(group, key=lambda cell: cell.spec.n_jobs)
        for group in groups.values()
    ]


def _simulate_independent(cell: Cell) -> StoredResult:
    from repro.exec.executor import simulate_cell

    return simulate_cell(cell)


def _run_chain_forked(group: Sequence[Cell]) -> tuple[list[StoredResult], int]:
    """Execute a horizon-ascending chain with one trunk + per-branch forks.

    Returns the stored results in the group's order plus the fork count.
    Raises :class:`_ChainInfeasible` when the workloads are not exact
    prefixes of the longest one (the caller falls back to independent
    simulation); :class:`SimulationError` from the checkpoint machinery
    propagates for the same treatment.
    """
    import numpy as np

    from repro.experiments.runner import cached_table, make_scheduler
    from repro.sim.engine import Simulator

    full_cell = group[-1]
    tables = [cached_table(cell.spec) for cell in group]
    full = tables[-1]
    for cell, table in zip(group[:-1], tables[:-1]):
        n = len(table)
        # Columnar prefix verification: every column equal to the full
        # table's first n rows — value-identical to the job-tuple
        # comparison the row path ran, without materializing a Job.
        if (
            table.max_procs != full.max_procs
            or n >= len(full)
            or not all(
                np.array_equal(arr, full.columns[name][:n])
                for name, arr in table.columns.items()
            )
        ):
            raise _ChainInfeasible(cell.label())

    trunk = Simulator(
        full,
        make_scheduler(full_cell.kind, full_cell.priority, **full_cell.options_dict),
    )
    results: list[StoredResult] = []
    forks = 0
    mark = time.perf_counter()
    for cell, table in zip(group[:-1], tables[:-1]):
        trunk.run_until(len(table))
        snap = trunk.snapshot()
        branch = Simulator.resume(snap, table)
        result = branch.drain()
        forks += 1
        now = time.perf_counter()
        # The trunk segment since the last branch point is work this
        # cell's independent simulation would also have done; charging it
        # here keeps per-cell sim_seconds summing to the chain's total.
        results.append(
            StoredResult(
                metrics=result.metrics,
                events_processed=result.events_processed,
                sim_seconds=now - mark,
            )
        )
        mark = now
    final = trunk.drain()
    results.append(
        StoredResult(
            metrics=final.metrics,
            events_processed=final.events_processed,
            sim_seconds=time.perf_counter() - mark,
        )
    )
    return results, forks


def run_chain(
    group: Sequence[Cell], stats: ChainStats
) -> list[tuple[Cell, StoredResult]]:
    """Execute one chain group, folding its outcome into ``stats``.

    Singleton groups run the ordinary per-cell path.  Multi-cell groups
    try the forked trunk; any infeasibility or checkpoint error falls
    back to independent simulation of every cell (results identical, the
    shared-prefix saving just forfeited).
    """
    if len(group) == 1:
        return [(group[0], _simulate_independent(group[0]))]
    try:
        results, forks = _run_chain_forked(group)
    except (_ChainInfeasible, SimulationError):
        stats.fallbacks += 1
        return [(cell, _simulate_independent(cell)) for cell in group]
    stats.chains += 1
    stats.chained_cells += len(group)
    stats.forks += forks
    return list(zip(group, results))


def run_chain_groups(
    cells: Sequence[Cell],
    stats: ChainStats,
    commit=None,
):
    """Plan chains over ``cells`` and execute every group, yielding pairs.

    ``commit``, when given, receives each completed group's
    ``[(cell, stored), ...]`` list as soon as the group finishes — the
    executor passes the store's ``put_many`` here, so results persist in
    one write batch per chain group instead of one write per cell, and a
    killed sweep keeps everything up to the last whole group.
    """
    for group in plan_chains(cells):
        pairs = run_chain(group, stats)
        if commit is not None:
            commit(pairs)
        yield from pairs


def simulate_chunk_chained(
    cells: Sequence[Cell],
) -> tuple[list[StoredResult], ChainStats]:
    """Worker task: simulate a chunk, chaining within it (order preserved).

    The executor packs whole chain groups into chunks, so re-planning
    inside the worker recovers exactly the parent's groups for this
    chunk.  No commit callback: the store lives in the parent, which
    batches the whole chunk's results on receipt.
    """
    stats = ChainStats()
    by_cell: dict[Cell, StoredResult] = dict(run_chain_groups(cells, stats))
    return [by_cell[cell] for cell in cells], stats

"""The :class:`Cell` — the unit of simulation work.

A *cell* is one fully-determined simulation: a workload spec crossed with
a scheduler kind, a priority policy, and the scheduler's keyword options.
It is frozen, hashable, and carries a stable content hash, so it can act
as a dictionary key in process memory, a file name in a persistent result
store, and a pickled work item shipped to a worker process — the same
identity in all three places.

``Cell`` replaces the old ad-hoc ``(spec, kind, priority, **options)``
calling convention of ``repro.experiments.runner.run_cell``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.experiments.config import WorkloadSpec

__all__ = ["Cell", "CACHE_SCHEMA_VERSION"]

#: Version stamp of the cell-hash / result-store schema.  Bumping it
#: invalidates every persisted result (the hash changes and old files are
#: rejected on read), so bump whenever the simulation semantics or the
#: serialized layout change incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Option values must be plain JSON-safe scalars so the content hash is
#: stable across processes and Python versions.
_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class Cell:
    """One simulation unit: (workload spec) x (scheduler, priority, options).

    ``options`` is a tuple of ``(name, value)`` pairs, normalized to
    sorted order on construction so two cells built with the same keyword
    arguments in any order compare (and hash) equal.  Use
    :meth:`Cell.make` to build one from keyword arguments directly.
    """

    spec: WorkloadSpec
    kind: str
    priority: str = "FCFS"
    options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        from repro.experiments.runner import SCHEDULER_KINDS

        if self.kind not in SCHEDULER_KINDS:
            raise ConfigurationError(
                f"unknown scheduler kind {self.kind!r}; "
                f"expected one of {SCHEDULER_KINDS}"
            )
        from repro.sched.priority.policies import PRIORITY_POLICIES

        if self.priority not in PRIORITY_POLICIES:
            raise ConfigurationError(
                f"unknown priority {self.priority!r}; "
                f"expected one of {tuple(PRIORITY_POLICIES)}"
            )
        for pair in self.options:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
            ):
                raise ConfigurationError(
                    f"cell options must be (name, value) pairs, got {pair!r}"
                )
            if not isinstance(pair[1], _SCALAR_TYPES):
                raise ConfigurationError(
                    f"cell option {pair[0]!r} must be a JSON-safe scalar, "
                    f"got {type(pair[1]).__name__}"
                )
        object.__setattr__(self, "options", tuple(sorted(self.options)))

    @classmethod
    def make(
        cls, spec: WorkloadSpec, kind: str, priority: str = "FCFS", **options
    ) -> "Cell":
        """Build a cell from the old keyword-style calling convention."""
        return cls(spec, kind, priority, tuple(options.items()))

    @property
    def options_dict(self) -> dict[str, object]:
        """The scheduler options as a plain keyword dictionary."""
        return dict(self.options)

    def to_payload(self) -> dict:
        """JSON-safe dict uniquely describing this cell (hash input)."""
        spec = self.spec
        return {
            "spec": {
                "trace": spec.trace,
                "n_jobs": spec.n_jobs,
                "seed": spec.seed,
                "load_scale": spec.load_scale,
                "estimate": spec.estimate,
            },
            "kind": self.kind,
            "priority": self.priority,
            "options": {name: value for name, value in self.options},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Cell":
        """Inverse of :meth:`to_payload`."""
        return cls.make(
            WorkloadSpec(**payload["spec"]),
            payload["kind"],
            payload["priority"],
            **payload["options"],
        )

    def __hash__(self) -> int:
        # Cells key every hot mapping in the execution layer (store
        # memory layer, chain grouping, bulk cache resolution), and the
        # generated dataclass hash recursively hashes the spec each call;
        # computing it once per instance is measurable at grid scale.
        try:
            return self._hash_value
        except AttributeError:
            value = hash((self.spec, self.kind, self.priority, self.options))
            object.__setattr__(self, "_hash_value", value)
            return value

    def __getstate__(self):
        # The cached hash must not travel to other processes: str hashes
        # depend on the interpreter's hash seed, which a spawned worker
        # does not share.
        state = dict(self.__dict__)
        state.pop("_hash_value", None)
        return state

    def content_hash(self) -> str:
        """Stable sha256 hex digest of this cell's content.

        Identical across processes, runs, and machines; changes whenever
        any field or :data:`CACHE_SCHEMA_VERSION` changes.
        """
        return _content_hash(self)

    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        spec = self.spec
        opts = ",".join(f"{k}={v}" for k, v in self.options)
        suffix = f" [{opts}]" if opts else ""
        return (
            f"{spec.trace}/j{spec.n_jobs}/s{spec.seed}/{spec.estimate}"
            f" {self.kind}-{self.priority}{suffix}"
        )


@lru_cache(maxsize=1 << 17)
def _content_hash(cell: Cell) -> str:
    payload = {"schema": CACHE_SCHEMA_VERSION, "cell": cell.to_payload()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

"""repro — Characterization of Backfilling Strategies for Parallel Job Scheduling.

A faithful, from-scratch reproduction of Srinivasan, Kettimuthu, Subramani &
Sadayappan (ICPP 2002): a trace-driven parallel job scheduling simulator
with conservative, EASY (aggressive), and selective backfilling; FCFS, SJF
and XFactor priority policies; synthetic CTC/SDSC SP2-like workload models
with controllable user-estimate accuracy; and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import CTCGenerator, EasyScheduler, SJFPriority, simulate

    workload = CTCGenerator().generate(2000, seed=7)
    result = simulate(workload, EasyScheduler(SJFPriority()))
    print(result.metrics.overall.mean_bounded_slowdown)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro._version import __version__
from repro.errors import (
    AllocationError,
    ConfigurationError,
    ExperimentError,
    ProfileError,
    ReproError,
    SchedulingError,
    SimulationError,
    SWFFormatError,
    WorkloadError,
)
from repro.workload.job import Job, Workload
from repro.workload.swf import read_swf, write_swf
from repro.workload.estimates import (
    ExactEstimate,
    MultiplicativeEstimate,
    UserEstimateModel,
    ClampedEstimate,
)
from repro.workload.transforms import apply_estimates, scale_load, shift_to_zero
from repro.workload.generators import (
    CTCGenerator,
    SDSCGenerator,
    LublinGenerator,
    ctc_model,
    sdsc_model,
)
from repro.cluster.machine import Machine
from repro.sim.engine import Simulator, SimulationResult, simulate
from repro.sim.trace import EventTrace
from repro.sched.base import Scheduler
from repro.sched.profile import Profile
from repro.sched.reservations import AdvanceReservation
from repro.sched.priority.policies import (
    FCFSPriority,
    SJFPriority,
    LJFPriority,
    XFactorPriority,
    SmallestFirstPriority,
    CompositePriority,
    policy_by_name,
)
from repro.sched.priority.fairshare import FairSharePriority
from repro.sched.validate import (
    validate_conservative_guarantees,
    validate_no_backfill,
    validate_schedule,
)
from repro.workload.stats import characterize, characterization_table
from repro.sched.backfill.nobf import FCFSScheduler
from repro.sched.backfill.conservative import ConservativeScheduler
from repro.sched.backfill.easy import EasyScheduler
from repro.sched.backfill.selective import SelectiveScheduler
from repro.sched.backfill.lookahead import LookaheadScheduler
from repro.sched.backfill.slack import SlackScheduler
from repro.sched.backfill.depth import DepthScheduler
from repro.sched.backfill.multiqueue import MultiQueueScheduler, QueueClass
from repro.workload.predictors import BlendedEstimate, UserHistoryPredictor
from repro.metrics.defs import bounded_slowdown, turnaround_time, wait_time
from repro.metrics.fairness import FairnessReport, fairness_report, start_time_deviations
from repro.grid import (
    GridSimulator,
    GridSite,
    LeastLoadedDispatch,
    RandomDispatch,
    RoundRobinDispatch,
)
from repro.preempt import PreemptiveSimulator, SelectiveSuspensionScheduler
from repro.metrics.categories import Category, EstimateQuality, categorize, estimate_quality
from repro.metrics.collector import CompletedJob, RunMetrics, summarize
from repro.metrics.streaming import StreamingMetrics
from repro.exec import (
    Cell,
    CellExecutor,
    ExecConfig,
    ExecutionReport,
    ResultStore,
    run_cells,
    set_default_executor,
)
from repro.experiments.config import WorkloadSpec
from repro.serve import AsyncSession, Session, WhatIfReport

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "WorkloadError",
    "SWFFormatError",
    "SimulationError",
    "SchedulingError",
    "AllocationError",
    "ProfileError",
    "ConfigurationError",
    "ExperimentError",
    # workload
    "Job",
    "Workload",
    "read_swf",
    "write_swf",
    "ExactEstimate",
    "MultiplicativeEstimate",
    "UserEstimateModel",
    "ClampedEstimate",
    "apply_estimates",
    "scale_load",
    "shift_to_zero",
    "CTCGenerator",
    "SDSCGenerator",
    "LublinGenerator",
    "ctc_model",
    "sdsc_model",
    # simulation
    "Machine",
    "Simulator",
    "SimulationResult",
    "simulate",
    "EventTrace",
    # scheduling
    "Scheduler",
    "Profile",
    "AdvanceReservation",
    "FCFSPriority",
    "SJFPriority",
    "LJFPriority",
    "XFactorPriority",
    "SmallestFirstPriority",
    "CompositePriority",
    "FairSharePriority",
    "policy_by_name",
    "validate_schedule",
    "validate_no_backfill",
    "validate_conservative_guarantees",
    "characterize",
    "characterization_table",
    "FCFSScheduler",
    "ConservativeScheduler",
    "EasyScheduler",
    "SelectiveScheduler",
    "LookaheadScheduler",
    "SlackScheduler",
    "DepthScheduler",
    "MultiQueueScheduler",
    "QueueClass",
    # predictors
    "BlendedEstimate",
    "UserHistoryPredictor",
    # grid (paper ref. [12])
    "GridSimulator",
    "GridSite",
    "LeastLoadedDispatch",
    "RandomDispatch",
    "RoundRobinDispatch",
    # preemption (paper ref. [6])
    "PreemptiveSimulator",
    "SelectiveSuspensionScheduler",
    # metrics
    "FairnessReport",
    "fairness_report",
    "start_time_deviations",
    "bounded_slowdown",
    "turnaround_time",
    "wait_time",
    "Category",
    "EstimateQuality",
    "categorize",
    "estimate_quality",
    "CompletedJob",
    "RunMetrics",
    "summarize",
    "StreamingMetrics",
    # execution (Cell API)
    "Cell",
    "CellExecutor",
    "ExecConfig",
    "set_default_executor",
    "ExecutionReport",
    "ResultStore",
    "run_cells",
    "WorkloadSpec",
    # serve (live sessions)
    "Session",
    "AsyncSession",
    "WhatIfReport",
]

"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class WorkloadError(ReproError):
    """A workload could not be generated, parsed, or transformed."""


class SWFFormatError(WorkloadError):
    """A Standard Workload Format file violates the format specification."""

    def __init__(self, message: str, *, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A scheduler violated one of its invariants (oversubscription, lost job, ...)."""


class AllocationError(SchedulingError):
    """A processor allocation request could not be satisfied or released."""


class ProfileError(SchedulingError):
    """The processor-availability profile was manipulated inconsistently."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment failed to run or produced no usable output."""

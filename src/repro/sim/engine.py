"""The simulation engine.

:class:`Simulator` replays a :class:`~repro.workload.job.Workload` through a
:class:`~repro.sched.base.Scheduler` on a
:class:`~repro.cluster.machine.Machine` and returns a
:class:`SimulationResult` holding every job's outcome plus run-level
accounting.

Event protocol (see :mod:`repro.sim.events` for the tie-breaking rules):

* ``JOB_ARRIVAL`` — the scheduler's :meth:`on_arrival` runs and returns
  jobs to start immediately;
* ``JOB_FINISH`` — processors are released first, then :meth:`on_finish`
  runs (so freed processors are startable in the same instant).

A job started at time *t* finishes at ``t + job.effective_runtime``: jobs
are killed at their wall-clock limit (``estimate``), matching production
scheduler semantics, though the standard estimate models never produce
``estimate < runtime``.

The engine verifies global invariants as it runs (monotone clock, every
arrival eventually completes, starts only of known queued jobs) and raises
:class:`~repro.errors.SimulationError` on any violation rather than
returning corrupt results.

Checkpoint/fork (see DESIGN.md section 9): a run can be paused at a
*batch boundary* with :meth:`Simulator.run_until`, captured with
:meth:`Simulator.snapshot`, and continued on a *prefix* workload with
:meth:`Simulator.resume` + :meth:`Simulator.drain` — the mechanism behind
the executor's simulation chains, which share one simulated prefix across
an entire horizon sweep.  Workload arrivals are therefore *fed lazily*
(merged into each batch from the sorted workload rather than pre-pushed
onto the event queue): the event queue then holds only engine-generated
events (finishes, timers, blocker arrivals), whose push sequence is
identical for every workload sharing the prefix, which is what makes a
snapshot's event queue and tie-breaking counters exactly reusable.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.errors import SchedulingError, SimulationError
from repro.metrics.collector import CompletedJob, RunMetrics, summarize
from repro.sched.base import Scheduler
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.trace import EventTrace
from repro.workload.job import Job, Workload

__all__ = ["Simulator", "SimulationResult", "SimulationSnapshot", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a single run produced."""

    workload_name: str
    scheduler_name: str
    metrics: RunMetrics
    events_processed: int
    trace: EventTrace | None = None

    @property
    def completed(self) -> tuple[CompletedJob, ...]:
        return self.metrics.records

    def start_times(self) -> dict[int, float]:
        """job_id -> start time (the schedule itself; used by equivalence tests)."""
        return {r.job.job_id: r.start_time for r in self.metrics.records}


@dataclass(frozen=True)
class SimulationSnapshot:
    """The complete mutable state of a paused simulation.

    Taken by :meth:`Simulator.snapshot` at a batch boundary — no event at
    a time ``>= watermark`` has been processed — and turned back into a
    live simulator by :meth:`Simulator.resume`.  Every field is an
    independent copy (cloned queue/machine, forked scheduler), so the
    snapshot stays valid while the originating simulation runs on, and a
    single snapshot can seed any number of resumed branches.
    """

    clock: float
    events: EventQueue
    scheduler: Scheduler
    machine: Machine
    timer_times: set
    timer_prune_at: int
    completed: tuple
    start_times: dict
    events_processed: int
    blocker_ids: frozenset
    #: Workload arrivals already fed into batches (= jobs with
    #: ``submit_time < watermark``); resume validates this against the
    #: branch workload.
    delivered: int
    #: Pause boundary: every batch strictly before it has been processed,
    #: none at or after it.
    watermark: float
    total_procs: int


class Simulator:
    """Drives one scheduler over one workload."""

    def __init__(
        self,
        workload: Workload,
        scheduler: Scheduler,
        *,
        trace: EventTrace | None = None,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        self.machine = Machine(workload.max_procs)
        self.trace = trace
        self.clock = 0.0
        self._events = EventQueue()
        self._completed: list[CompletedJob] = []
        self._start_times: dict[int, float] = {}
        self._pending = 0
        self._events_processed = 0
        self._timer_times: set[float] = set()
        self._timer_prune_at = 256  # amortized stale-entry prune threshold
        self._blocker_ids: set[int] = set()
        self._ran = False
        self._primed = False
        self._finalized = False
        self._arrival_index = 0  # next workload job to feed into a batch
        self._watermark = 0.0  # largest run_until() stop time so far

    # -- internals ------------------------------------------------------------

    def _record_trace(self, action: str, job: Job) -> None:
        if self.trace is not None:
            self.trace.record(
                self.clock,
                action,
                job.job_id,
                job.procs,
                self.scheduler.queue_length,
                self.machine.free_procs,
            )

    def _start_jobs(self, jobs: list[Job]) -> None:
        for job in jobs:
            if job.job_id in self._start_times:
                raise SimulationError(
                    f"scheduler tried to start job {job.job_id} twice"
                )
            self.machine.allocate(job, self.clock)
            self._start_times[job.job_id] = self.clock
            self.scheduler.notify_started(job, self.clock)
            finish = self.clock + job.effective_runtime
            self._events.push(Event(finish, EventKind.JOB_FINISH, job))
            self._record_trace("start", job)

    #: Blocker job ids for advance reservations start here; workload ids
    #: must stay below.
    _BLOCKER_ID_BASE = 10**12

    def _install_advance_reservations(self) -> None:
        """Create machine-side capacity blocks for the scheduler's ARs.

        The scheduler is the single source of truth (its planning profile
        already avoids the windows); schedulers without planning support
        cannot honour a hard future rectangle, so declaring ARs on one is
        rejected here rather than failing as an allocation error mid-run.
        """
        reservations = tuple(getattr(self.scheduler, "advance_reservations", ()))
        if not reservations:
            return
        if not getattr(self.scheduler, "supports_advance_reservations", False):
            raise SimulationError(
                f"{self.scheduler.name} cannot honour advance reservations — "
                "only profile-planning disciplines (conservative, selective, "
                "depth) can pack around a hard future rectangle"
            )
        if any(job.job_id >= self._BLOCKER_ID_BASE for job in self.workload):
            raise SimulationError(
                f"workload job ids must stay below {self._BLOCKER_ID_BASE} "
                "when advance reservations are used"
            )
        from repro.sched.reservations import validate_reservation_set

        validate_reservation_set(reservations, self.machine.total_procs)
        for index, ar in enumerate(reservations):
            blocker = Job(
                job_id=self._BLOCKER_ID_BASE + index,
                submit_time=ar.start,
                runtime=ar.duration,
                estimate=ar.duration,
                procs=ar.procs,
            )
            self._blocker_ids.add(blocker.job_id)
            self._events.push(Event(ar.start, EventKind.JOB_ARRIVAL, blocker))

    def _handle_blocker_arrival(self, blocker: Job) -> None:
        self.machine.allocate(blocker, self.clock)
        self._events.push(
            Event(self.clock + blocker.runtime, EventKind.JOB_FINISH, blocker)
        )

    def _handle_arrival(self, job: Job) -> None:
        started = self.scheduler.on_arrival(job, self.clock)
        # Recorded after the scheduler reacted so the trace reflects the
        # post-event state (queue depth including the job if it queued).
        self._record_trace("arrive", job)
        self._start_jobs(started)

    def _request_wakeup(self, time: float) -> None:
        """Schedule a TIMER event at ``time`` (deduplicated, never in the past)."""
        when = max(time, self.clock)
        if when not in self._timer_times:
            self._timer_times.add(when)
            self._events.push(Event(when, EventKind.TIMER, None))

    def _handle_timer(self) -> None:
        self._timer_times.discard(self.clock)
        started = self.scheduler.on_wakeup(self.clock)
        self._start_jobs(started)

    def _release_finished(self, job: Job) -> None:
        """Phase 1 of a completion: release processors, record the outcome.

        Separated from the scheduler reaction so that *all* completions
        sharing a timestamp release their processors before any scheduling
        decision runs — real schedulers batch their wakeups the same way,
        and a reservation anchored at two simultaneous completions must
        observe both.
        """
        start = self._start_times.get(job.job_id)
        if start is None:
            raise SimulationError(f"finish event for never-started job {job.job_id}")
        self.machine.release(job, self.clock)
        self.scheduler.notify_finished(job, self.clock)
        self._completed.append(CompletedJob(job, start, self.clock))
        self._pending -= 1
        self._record_trace("finish", job)

    # -- the event loop ---------------------------------------------------------

    def _prime(self) -> None:
        """Bind the scheduler and install reservations; arrivals stay lazy."""
        self._primed = True
        self.scheduler.bind(self.machine, self._request_wakeup)
        self._install_advance_reservations()
        self._pending = len(self.workload)

    def _next_batch_time(self) -> float:
        """Timestamp of the next batch: earliest queue event or fed arrival."""
        queue_time = self._events.next_time
        if self._arrival_index < len(self.workload):
            arrival_time = self.workload[self._arrival_index].submit_time
            return arrival_time if arrival_time < queue_time else queue_time
        return queue_time

    def _process_batch(self, batch_time: float) -> None:
        """Process every event at exactly ``batch_time``.

        The batch merges queue events (finishes, timers, blocker arrivals
        — popped in kind/sequence order) with the workload arrivals due at
        this timestamp, fed from the sorted workload.  Because workload
        arrivals are never *pushed*, the merge reproduces the ordering the
        pre-checkpoint engine got from pushing all arrivals up front:
        engine-generated events carry lower sequence numbers than any
        arrival at the same instant would, and arrivals sort last by kind
        anyway.  Events pushed *during* processing at the same timestamp
        form the next batch.
        """
        if batch_time < self.clock - 1e-9:
            raise SimulationError(
                f"time went backwards: {self.clock} -> {batch_time}"
            )
        self.clock = max(self.clock, batch_time)
        # Prune timer-dedup entries for strictly-past timestamps: their
        # TIMER events have fired and new requests clamp to >= clock, so
        # they can never match again — without this the set grows
        # monotonically over long traces.  Entries at exactly ``clock``
        # stay: their events may be in this very batch, and
        # _handle_timer discards them on the exact float.  The scan is
        # amortized: it runs only once the set doubles past the last
        # prune's survivor count, so a deep queue of genuinely live
        # future timers is not rescanned every batch.
        if len(self._timer_times) > self._timer_prune_at:
            self._timer_times = {t for t in self._timer_times if t >= self.clock}
            self._timer_prune_at = max(256, 2 * len(self._timer_times))
        batch = self._events.pop_batch(batch_time)
        jobs = self.workload.jobs
        index = self._arrival_index
        while index < len(jobs) and jobs[index].submit_time == batch_time:
            batch.append(Event(batch_time, EventKind.JOB_ARRIVAL, jobs[index]))
            index += 1
        self._arrival_index = index
        self._events_processed += len(batch)

        finishes = [e.job for e in batch if e.kind is EventKind.JOB_FINISH]
        for job in finishes:
            assert job is not None
            if job.job_id in self._blocker_ids:
                self.machine.release(job, self.clock)
            else:
                self._release_finished(job)
        for job in finishes:
            assert job is not None
            if job.job_id in self._blocker_ids:
                # The scheduler never saw the blocker, but its plan may
                # anchor starts at the window's end — poke it.
                self._start_jobs(self.scheduler.poke(self.clock))
                continue
            self._start_jobs(self.scheduler.on_finish(job, self.clock))
        for event in batch:
            if event.kind is EventKind.TIMER:
                self._handle_timer()
            elif event.kind is EventKind.JOB_ARRIVAL:
                assert event.job is not None
                if event.job.job_id in self._blocker_ids:
                    self._handle_blocker_arrival(event.job)
                else:
                    self._handle_arrival(event.job)

    def _advance_until(self, stop_time: float) -> None:
        """Process batches strictly before ``stop_time`` (inf = drain all)."""
        while True:
            batch_time = self._next_batch_time()
            if batch_time >= stop_time:
                return
            self._process_batch(batch_time)

    def _finalize(self) -> SimulationResult:
        self._finalized = True
        if self._pending != 0:
            stuck = [j.job_id for j in self.scheduler.queued_jobs]
            raise SchedulingError(
                f"simulation drained its events with {self._pending} jobs "
                f"unfinished (still queued: {stuck[:10]}{'...' if len(stuck) > 10 else ''})"
            )
        if len(self._completed) != len(self.workload):
            raise SimulationError(
                f"completed {len(self._completed)} of {len(self.workload)} jobs"
            )

        metrics = summarize(
            self._completed,
            utilization=self.machine.utilization(),
            makespan=self.clock
            - (
                min(job.submit_time for job in self.workload)
                if len(self.workload)
                else 0.0
            ),
        )
        return SimulationResult(
            workload_name=self.workload.name,
            scheduler_name=self.scheduler.describe(),
            metrics=metrics,
            events_processed=self._events_processed,
            trace=self.trace,
        )

    # -- public API -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to completion and return the result.  Single use."""
        if self._ran:
            raise SimulationError("a Simulator instance can only run once")
        self._ran = True
        self._prime()
        self._advance_until(math.inf)
        return self._finalize()

    def run_until(self, job_count: int) -> None:
        """Advance until just before workload job ``job_count`` arrives.

        Processes every batch whose timestamp is strictly before the
        submit time of ``workload[job_count]`` and pauses at that batch
        boundary — the exact point where a simulation of only the first
        ``job_count`` jobs stops being distinguishable from this one, so a
        :meth:`snapshot` taken here can seed either continuation.  May be
        called repeatedly with non-decreasing horizons; finish with
        :meth:`drain`.
        """
        if self._finalized:
            raise SimulationError("run_until() after the simulation finished")
        if not 0 < job_count < len(self.workload):
            raise SimulationError(
                f"run_until() needs 0 < job_count < {len(self.workload)}, "
                f"got {job_count} (use run() or drain() for a full run)"
            )
        if not self._primed:
            if self._ran:
                raise SimulationError("run_until() after run() on the same instance")
            self._ran = True
            self._prime()
        stop_time = self.workload[job_count].submit_time
        if stop_time < self._watermark:
            raise SimulationError(
                f"run_until() horizons must be non-decreasing: job {job_count} "
                f"arrives at {stop_time}, before the previous stop at "
                f"{self._watermark}"
            )
        self._advance_until(stop_time)
        self._watermark = stop_time

    def drain(self) -> SimulationResult:
        """Run the remaining events to completion and return the result.

        The terminal step after :meth:`run_until` / :meth:`resume`;
        subject to the same single-use rule as :meth:`run`.
        """
        if not self._primed:
            raise SimulationError("drain() before run_until() or resume()")
        if self._finalized:
            raise SimulationError("drain() after the simulation finished")
        self._advance_until(math.inf)
        return self._finalize()

    def snapshot(self) -> SimulationSnapshot:
        """Capture the paused simulation's state as an independent copy.

        Must follow :meth:`run_until` (the batch-boundary guarantee is
        what makes the state reusable).  The running simulation is not
        disturbed and may be advanced further afterwards.
        """
        if not self._primed:
            raise SimulationError("snapshot() before run_until()")
        if self._finalized:
            raise SimulationError("snapshot() after the simulation finished")
        return SimulationSnapshot(
            clock=self.clock,
            events=self._events.clone(),
            scheduler=self.scheduler.fork(),
            machine=self.machine.clone(),
            timer_times=set(self._timer_times),
            timer_prune_at=self._timer_prune_at,
            completed=tuple(self._completed),
            start_times=dict(self._start_times),
            events_processed=self._events_processed,
            blocker_ids=frozenset(self._blocker_ids),
            delivered=self._arrival_index,
            watermark=self._watermark,
            total_procs=self.machine.total_procs,
        )

    @classmethod
    def resume(
        cls,
        snapshot: SimulationSnapshot,
        workload: Workload,
        *,
        trace: EventTrace | None = None,
    ) -> "Simulator":
        """Rebuild a live simulator from ``snapshot`` on ``workload``.

        ``workload`` must agree with the snapshot's history: same machine
        size, and exactly the snapshot's ``delivered`` jobs submitted
        before its watermark (the simulated prefix).  The returned
        simulator continues from the pause point; call :meth:`drain` (or
        :meth:`run_until` for further checkpoints) on it.  The snapshot is
        left intact and can seed more branches.
        """
        if workload.max_procs != snapshot.total_procs:
            raise SimulationError(
                f"cannot resume on a {workload.max_procs}-proc workload: the "
                f"snapshot was taken on {snapshot.total_procs} processors"
            )
        if snapshot.blocker_ids and any(
            job.job_id >= cls._BLOCKER_ID_BASE for job in workload
        ):
            raise SimulationError(
                f"workload job ids must stay below {cls._BLOCKER_ID_BASE} "
                "when resuming a snapshot with advance reservations"
            )
        delivered = bisect_left(
            workload.jobs, snapshot.watermark, key=lambda job: job.submit_time
        )
        if delivered != snapshot.delivered:
            raise SimulationError(
                f"workload disagrees with the snapshot's history: "
                f"{delivered} jobs submitted before t={snapshot.watermark}, "
                f"but the snapshot simulated {snapshot.delivered} arrivals"
            )
        sim = cls(workload, snapshot.scheduler.fork(), trace=trace)
        sim.machine = snapshot.machine.clone()
        sim.clock = snapshot.clock
        sim._events = snapshot.events.clone()
        sim._completed = list(snapshot.completed)
        sim._start_times = dict(snapshot.start_times)
        sim._events_processed = snapshot.events_processed
        sim._timer_times = set(snapshot.timer_times)
        sim._timer_prune_at = snapshot.timer_prune_at
        sim._blocker_ids = set(snapshot.blocker_ids)
        sim._arrival_index = delivered
        sim._pending = len(workload) - len(snapshot.completed)
        sim._watermark = snapshot.watermark
        sim._ran = True
        sim._primed = True
        sim.scheduler.rebind(sim.machine, sim._request_wakeup)
        return sim


def simulate(
    workload: Workload,
    scheduler: Scheduler,
    *,
    trace: EventTrace | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper: build a Simulator and run it."""
    return Simulator(workload, scheduler, trace=trace).run()

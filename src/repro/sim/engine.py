"""The simulation engine.

:class:`Simulator` replays a :class:`~repro.workload.job.Workload` through a
:class:`~repro.sched.base.Scheduler` on a
:class:`~repro.cluster.machine.Machine` and returns a
:class:`SimulationResult` holding every job's outcome plus run-level
accounting.

Event protocol (see :mod:`repro.sim.events` for the tie-breaking rules):

* ``JOB_ARRIVAL`` — the scheduler's :meth:`on_arrival` runs and returns
  jobs to start immediately;
* ``JOB_FINISH`` — processors are released first, then :meth:`on_finish`
  runs (so freed processors are startable in the same instant).

A job started at time *t* finishes at ``t + job.effective_runtime``: jobs
are killed at their wall-clock limit (``estimate``), matching production
scheduler semantics, though the standard estimate models never produce
``estimate < runtime``.

The engine verifies global invariants as it runs (monotone clock, every
arrival eventually completes, starts only of known queued jobs) and raises
:class:`~repro.errors.SimulationError` on any violation rather than
returning corrupt results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.errors import SchedulingError, SimulationError
from repro.metrics.collector import CompletedJob, RunMetrics, summarize
from repro.sched.base import Scheduler
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.trace import EventTrace
from repro.workload.job import Job, Workload

__all__ = ["Simulator", "SimulationResult", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a single run produced."""

    workload_name: str
    scheduler_name: str
    metrics: RunMetrics
    events_processed: int
    trace: EventTrace | None = None

    @property
    def completed(self) -> tuple[CompletedJob, ...]:
        return self.metrics.records

    def start_times(self) -> dict[int, float]:
        """job_id -> start time (the schedule itself; used by equivalence tests)."""
        return {r.job.job_id: r.start_time for r in self.metrics.records}


class Simulator:
    """Drives one scheduler over one workload."""

    def __init__(
        self,
        workload: Workload,
        scheduler: Scheduler,
        *,
        trace: EventTrace | None = None,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        self.machine = Machine(workload.max_procs)
        self.trace = trace
        self.clock = 0.0
        self._events = EventQueue()
        self._completed: list[CompletedJob] = []
        self._start_times: dict[int, float] = {}
        self._pending = 0
        self._events_processed = 0
        self._timer_times: set[float] = set()
        self._timer_prune_at = 256  # amortized stale-entry prune threshold
        self._blocker_ids: set[int] = set()
        self._ran = False

    # -- internals ------------------------------------------------------------

    def _record_trace(self, action: str, job: Job) -> None:
        if self.trace is not None:
            self.trace.record(
                self.clock,
                action,
                job.job_id,
                job.procs,
                self.scheduler.queue_length,
                self.machine.free_procs,
            )

    def _start_jobs(self, jobs: list[Job]) -> None:
        for job in jobs:
            if job.job_id in self._start_times:
                raise SimulationError(
                    f"scheduler tried to start job {job.job_id} twice"
                )
            self.machine.allocate(job, self.clock)
            self._start_times[job.job_id] = self.clock
            self.scheduler.notify_started(job, self.clock)
            finish = self.clock + job.effective_runtime
            self._events.push(Event(finish, EventKind.JOB_FINISH, job))
            self._record_trace("start", job)

    #: Blocker job ids for advance reservations start here; workload ids
    #: must stay below.
    _BLOCKER_ID_BASE = 10**12

    def _install_advance_reservations(self) -> None:
        """Create machine-side capacity blocks for the scheduler's ARs.

        The scheduler is the single source of truth (its planning profile
        already avoids the windows); schedulers without planning support
        cannot honour a hard future rectangle, so declaring ARs on one is
        rejected here rather than failing as an allocation error mid-run.
        """
        reservations = tuple(getattr(self.scheduler, "advance_reservations", ()))
        if not reservations:
            return
        if not getattr(self.scheduler, "supports_advance_reservations", False):
            raise SimulationError(
                f"{self.scheduler.name} cannot honour advance reservations — "
                "only profile-planning disciplines (conservative, selective, "
                "depth) can pack around a hard future rectangle"
            )
        if any(job.job_id >= self._BLOCKER_ID_BASE for job in self.workload):
            raise SimulationError(
                f"workload job ids must stay below {self._BLOCKER_ID_BASE} "
                "when advance reservations are used"
            )
        from repro.sched.reservations import validate_reservation_set

        validate_reservation_set(reservations, self.machine.total_procs)
        for index, ar in enumerate(reservations):
            blocker = Job(
                job_id=self._BLOCKER_ID_BASE + index,
                submit_time=ar.start,
                runtime=ar.duration,
                estimate=ar.duration,
                procs=ar.procs,
            )
            self._blocker_ids.add(blocker.job_id)
            self._events.push(Event(ar.start, EventKind.JOB_ARRIVAL, blocker))

    def _handle_blocker_arrival(self, blocker: Job) -> None:
        self.machine.allocate(blocker, self.clock)
        self._events.push(
            Event(self.clock + blocker.runtime, EventKind.JOB_FINISH, blocker)
        )

    def _handle_arrival(self, job: Job) -> None:
        started = self.scheduler.on_arrival(job, self.clock)
        # Recorded after the scheduler reacted so the trace reflects the
        # post-event state (queue depth including the job if it queued).
        self._record_trace("arrive", job)
        self._start_jobs(started)

    def _request_wakeup(self, time: float) -> None:
        """Schedule a TIMER event at ``time`` (deduplicated, never in the past)."""
        when = max(time, self.clock)
        if when not in self._timer_times:
            self._timer_times.add(when)
            self._events.push(Event(when, EventKind.TIMER, None))

    def _handle_timer(self) -> None:
        self._timer_times.discard(self.clock)
        started = self.scheduler.on_wakeup(self.clock)
        self._start_jobs(started)

    def _release_finished(self, job: Job) -> None:
        """Phase 1 of a completion: release processors, record the outcome.

        Separated from the scheduler reaction so that *all* completions
        sharing a timestamp release their processors before any scheduling
        decision runs — real schedulers batch their wakeups the same way,
        and a reservation anchored at two simultaneous completions must
        observe both.
        """
        start = self._start_times.get(job.job_id)
        if start is None:
            raise SimulationError(f"finish event for never-started job {job.job_id}")
        self.machine.release(job, self.clock)
        self.scheduler.notify_finished(job, self.clock)
        self._completed.append(CompletedJob(job, start, self.clock))
        self._pending -= 1
        self._record_trace("finish", job)

    # -- public API -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to completion and return the result.  Single use."""
        if self._ran:
            raise SimulationError("a Simulator instance can only run once")
        self._ran = True

        self.scheduler.bind(self.machine, self._request_wakeup)
        self._install_advance_reservations()
        for job in self.workload:
            self._events.push(Event(job.submit_time, EventKind.JOB_ARRIVAL, job))
        self._pending = len(self.workload)

        while self._events:
            batch_time = self._events.next_time
            if batch_time < self.clock - 1e-9:
                raise SimulationError(
                    f"time went backwards: {self.clock} -> {batch_time}"
                )
            self.clock = max(self.clock, batch_time)
            # Prune timer-dedup entries for strictly-past timestamps: their
            # TIMER events have fired and new requests clamp to >= clock, so
            # they can never match again — without this the set grows
            # monotonically over long traces.  Entries at exactly ``clock``
            # stay: their events may be in this very batch, and
            # _handle_timer discards them on the exact float.  The scan is
            # amortized: it runs only once the set doubles past the last
            # prune's survivor count, so a deep queue of genuinely live
            # future timers is not rescanned every batch.
            if len(self._timer_times) > self._timer_prune_at:
                self._timer_times = {t for t in self._timer_times if t >= self.clock}
                self._timer_prune_at = max(256, 2 * len(self._timer_times))
            # Drain every event sharing this timestamp (already kind-ordered:
            # finishes, then timers, then arrivals).  Events pushed *during*
            # processing at the same timestamp form the next batch.
            batch: list[Event] = []
            while self._events and self._events.next_time == batch_time:
                batch.append(self._events.pop())
            self._events_processed += len(batch)

            finishes = [e.job for e in batch if e.kind is EventKind.JOB_FINISH]
            for job in finishes:
                assert job is not None
                if job.job_id in self._blocker_ids:
                    self.machine.release(job, self.clock)
                else:
                    self._release_finished(job)
            for job in finishes:
                assert job is not None
                if job.job_id in self._blocker_ids:
                    # The scheduler never saw the blocker, but its plan may
                    # anchor starts at the window's end — poke it.
                    self._start_jobs(self.scheduler.poke(self.clock))
                    continue
                self._start_jobs(self.scheduler.on_finish(job, self.clock))
            for event in batch:
                if event.kind is EventKind.TIMER:
                    self._handle_timer()
                elif event.kind is EventKind.JOB_ARRIVAL:
                    assert event.job is not None
                    if event.job.job_id in self._blocker_ids:
                        self._handle_blocker_arrival(event.job)
                    else:
                        self._handle_arrival(event.job)

        if self._pending != 0:
            stuck = [j.job_id for j in self.scheduler.queued_jobs]
            raise SchedulingError(
                f"simulation drained its events with {self._pending} jobs "
                f"unfinished (still queued: {stuck[:10]}{'...' if len(stuck) > 10 else ''})"
            )
        if len(self._completed) != len(self.workload):
            raise SimulationError(
                f"completed {len(self._completed)} of {len(self.workload)} jobs"
            )

        metrics = summarize(
            self._completed,
            utilization=self.machine.utilization(),
            makespan=self.clock
            - (self.workload[0].submit_time if len(self.workload) else 0.0),
        )
        return SimulationResult(
            workload_name=self.workload.name,
            scheduler_name=self.scheduler.describe(),
            metrics=metrics,
            events_processed=self._events_processed,
            trace=self.trace,
        )


def simulate(
    workload: Workload,
    scheduler: Scheduler,
    *,
    trace: EventTrace | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper: build a Simulator and run it."""
    return Simulator(workload, scheduler, trace=trace).run()

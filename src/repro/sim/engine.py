"""The simulation engine.

:class:`Simulator` replays a workload — a row
:class:`~repro.workload.job.Workload` or a columnar
:class:`~repro.workload.table.JobTable`, absorbed behind an *arrival
feed* (:mod:`repro.sim.feed`, DESIGN.md section 12) — through a
:class:`~repro.sched.base.Scheduler` on a
:class:`~repro.cluster.machine.Machine` and returns a
:class:`SimulationResult` holding every job's outcome plus run-level
accounting.  Table-fed jobs materialize lazily per arrival batch via
the trusted bulk constructor; the two feeds produce byte-identical
schedules.

Event protocol (see :mod:`repro.sim.events` for the tie-breaking rules):

* ``JOB_ARRIVAL`` — the scheduler's :meth:`on_arrival` runs and returns
  jobs to start immediately;
* ``JOB_FINISH`` — processors are released first, then :meth:`on_finish`
  runs (so freed processors are startable in the same instant).

A job started at time *t* finishes at ``t + job.effective_runtime``: jobs
are killed at their wall-clock limit (``estimate``), matching production
scheduler semantics, though the standard estimate models never produce
``estimate < runtime``.

The engine verifies global invariants as it runs (monotone clock, every
arrival eventually completes, starts only of known queued jobs) and raises
:class:`~repro.errors.SimulationError` on any violation rather than
returning corrupt results.

Checkpoint/fork (see DESIGN.md section 9): a run can be paused at a
*batch boundary* with :meth:`Simulator.run_until` (a job-count horizon)
or :meth:`Simulator.run_until_time` (a wall-clock stop), captured with
:meth:`Simulator.snapshot`, and continued on a *prefix* workload with
:meth:`Simulator.resume` + :meth:`Simulator.drain` — the mechanism behind
the executor's simulation chains, which share one simulated prefix across
an entire horizon sweep.  Workload arrivals are therefore *fed lazily*
(merged into each batch from the sorted workload rather than pre-pushed
onto the event queue): the event queue then holds only engine-generated
events (finishes, timers, blocker arrivals), whose push sequence is
identical for every workload sharing the prefix, which is what makes a
snapshot's event queue and tie-breaking counters exactly reusable.

The batch-boundary invariant both pause methods enforce: after a pause
at watermark *w*, every batch strictly before *w* has been processed and
none at or after it — so ``delivered`` arrivals are exactly the workload
jobs with ``submit_time < w``, which is what :meth:`Simulator.resume`
re-validates on every branch.  Violations (non-monotone horizons, a
workload that disagrees with the simulated history, arrivals injected
into the simulated past via :meth:`Simulator.extend_workload`) raise
:class:`~repro.errors.SimulationError` immediately instead of drifting.

Streaming metrics (see DESIGN.md section 11): a long-lived simulation —
the serve layer's live session — cannot afford the per-job
:class:`~repro.metrics.collector.CompletedJob` rows a batch run
accumulates.  Passing a *metrics sink* (duck-typed:
``observe(record)``, ``fork()``, ``watched_records``,
``run_metrics(utilization=..., makespan=...)`` — implemented by
:class:`repro.metrics.streaming.StreamingMetrics`) makes the engine hand
each completed record to the sink and drop it, keeping per-job state
O(running + queued) instead of O(total jobs).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.errors import SchedulingError, SimulationError
from repro.metrics.collector import CompletedJob, RunMetrics, summarize
from repro.sched.base import Scheduler
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.feed import make_feed
from repro.sim.trace import EventTrace
from repro.workload.job import Job, Workload
from repro.workload.table import JobTable

__all__ = ["Simulator", "SimulationResult", "SimulationSnapshot", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a single run produced."""

    workload_name: str
    scheduler_name: str
    metrics: RunMetrics
    events_processed: int
    trace: EventTrace | None = None

    @property
    def completed(self) -> tuple[CompletedJob, ...]:
        return self.metrics.records

    def start_times(self) -> dict[int, float]:
        """job_id -> start time (the schedule itself; used by equivalence tests).

        Computed once and cached — the equivalence suites call it
        repeatedly per comparison, and the records never change.
        """
        cached = self.__dict__.get("_start_times_cache")
        if cached is None:
            cached = {r.job.job_id: r.start_time for r in self.metrics.records}
            object.__setattr__(self, "_start_times_cache", cached)
        return cached


@dataclass(frozen=True)
class SimulationSnapshot:
    """The complete mutable state of a paused simulation.

    Taken by :meth:`Simulator.snapshot` at a batch boundary — no event at
    a time ``>= watermark`` has been processed — and turned back into a
    live simulator by :meth:`Simulator.resume`.  Every field is an
    independent copy (cloned queue/machine, forked scheduler), so the
    snapshot stays valid while the originating simulation runs on, and a
    single snapshot can seed any number of resumed branches.
    """

    clock: float
    events: EventQueue
    scheduler: Scheduler
    machine: Machine
    timer_times: set
    timer_prune_at: int
    completed: tuple
    start_times: dict
    events_processed: int
    blocker_ids: frozenset
    #: Workload arrivals already fed into batches (= jobs with
    #: ``submit_time < watermark``); resume validates this against the
    #: branch workload.
    delivered: int
    #: Pause boundary: every batch strictly before it has been processed,
    #: none at or after it.
    watermark: float
    total_procs: int
    #: Jobs completed before the pause.  Equals ``len(completed)`` in
    #: batch mode; in streaming mode ``completed`` is empty and this
    #: counter is the only record of how many jobs already finished.
    completed_count: int = 0
    #: Forked metrics sink for streaming-mode snapshots (None in batch
    #: mode).  Carries the aggregate state of every pre-pause completion,
    #: which is why a streaming snapshot cannot resume without a sink.
    metrics_sink: object | None = None


class Simulator:
    """Drives one scheduler over one workload."""

    #: Sentinel for :meth:`resume`'s ``metrics_sink`` parameter: inherit
    #: (fork) the snapshot's own sink.
    _INHERIT_SINK = object()

    def __init__(
        self,
        workload: Workload | JobTable,
        scheduler: Scheduler,
        *,
        trace: EventTrace | None = None,
        metrics_sink=None,
        _feed=None,
    ) -> None:
        self._feed = _feed if _feed is not None else make_feed(workload)
        self.scheduler = scheduler
        self.machine = Machine(self._feed.max_procs)
        self.trace = trace
        self.clock = 0.0
        self._metrics_sink = metrics_sink
        self._completed_count = 0
        self._events = EventQueue()
        self._completed: list[CompletedJob] = []
        self._start_times: dict[int, float] = {}
        self._pending = 0
        self._events_processed = 0
        self._timer_times: set[float] = set()
        self._timer_prune_at = 256  # amortized stale-entry prune threshold
        self._blocker_ids: set[int] = set()
        self._ran = False
        self._primed = False
        self._finalized = False
        self._arrival_index = 0  # next workload job to feed into a batch
        self._watermark = 0.0  # largest run_until() stop time so far

    # -- internals ------------------------------------------------------------

    @property
    def workload(self) -> Workload:
        """The workload in row form.

        Table-fed simulations materialize it lazily (trusted, cached by
        the feed) — the hot path never touches it, only external
        inspection does.
        """
        return self._feed.as_workload()

    def _record_trace(self, action: str, job: Job) -> None:
        if self.trace is not None:
            self.trace.record(
                self.clock,
                action,
                job.job_id,
                job.procs,
                self.scheduler.queue_length,
                self.machine.free_procs,
            )

    #: Blocker job ids for advance reservations start here; workload ids
    #: must stay below.
    _BLOCKER_ID_BASE = 10**12

    def _install_advance_reservations(self) -> None:
        """Create machine-side capacity blocks for the scheduler's ARs.

        The scheduler is the single source of truth (its planning profile
        already avoids the windows); schedulers without planning support
        cannot honour a hard future rectangle, so declaring ARs on one is
        rejected here rather than failing as an allocation error mid-run.
        """
        reservations = tuple(getattr(self.scheduler, "advance_reservations", ()))
        if not reservations:
            return
        if not getattr(self.scheduler, "supports_advance_reservations", False):
            raise SimulationError(
                f"{self.scheduler.name} cannot honour advance reservations — "
                "only profile-planning disciplines (conservative, selective, "
                "depth) can pack around a hard future rectangle"
            )
        if self._feed.has_id_at_or_above(self._BLOCKER_ID_BASE):
            raise SimulationError(
                f"workload job ids must stay below {self._BLOCKER_ID_BASE} "
                "when advance reservations are used"
            )
        from repro.sched.reservations import validate_reservation_set

        validate_reservation_set(reservations, self.machine.total_procs)
        for index, ar in enumerate(reservations):
            blocker = Job(
                job_id=self._BLOCKER_ID_BASE + index,
                submit_time=ar.start,
                runtime=ar.duration,
                estimate=ar.duration,
                procs=ar.procs,
            )
            self._blocker_ids.add(blocker.job_id)
            self._events.push(Event(ar.start, EventKind.JOB_ARRIVAL, blocker))

    def _request_wakeup(self, time: float) -> None:
        """Schedule a TIMER event at ``time`` (deduplicated, never in the past)."""
        when = max(time, self.clock)
        if when not in self._timer_times:
            self._timer_times.add(when)
            self._events.push(Event(when, EventKind.TIMER, None))

    # -- the event loop ---------------------------------------------------------

    def _prime(self) -> None:
        """Bind the scheduler and install reservations; arrivals stay lazy."""
        self._primed = True
        self.scheduler.bind(self.machine, self._request_wakeup)
        self._install_advance_reservations()
        self._pending = self._feed.n

    def _advance_until(self, stop_time: float) -> None:
        """Process batches strictly before ``stop_time`` (inf = drain all).

        This is THE hot loop of a simulation — profiling a 90-cell sweep
        puts ~70% of wall-clock here and in the scheduler passes it calls
        — so it trades a little readability for speed: every attribute
        and method it touches per event is hoisted into a local once per
        call, and the mutable counters are plain locals written back in
        the ``finally`` (the same values the attribute-per-event version
        maintained, including mid-batch on an engine error).

        Each iteration processes one *batch*: every event at the next
        timestamp, merging queue events (finishes, timers, blocker
        arrivals — popped in kind/sequence order) with the workload
        arrivals due then, fed from the sorted feed.  Because workload
        arrivals are never *pushed*, the merge reproduces the ordering
        the pre-checkpoint engine got from pushing all arrivals up front:
        engine-generated events carry lower sequence numbers than any
        arrival at the same instant would, and arrivals sort last by kind
        anyway.  Within a batch, *all* completions release their
        processors (phase 1) before any scheduling decision runs (phase
        2) — real schedulers batch their wakeups the same way, and a
        reservation anchored at two simultaneous completions must observe
        both.  Events pushed *during* processing at the same timestamp
        form the next batch.  Table-fed jobs materialize here, batch by
        batch, through the trusted constructor — a paused run never
        builds the jobs it has not reached.
        """
        feed = self._feed
        submit_times = feed.submit_times
        materialize = feed.materialize
        n_jobs = feed.n
        events = self._events
        heap = events._heap
        push_finish = events.push_finish
        pop_batch = events.pop_batch
        machine = self.machine
        scheduler = self.scheduler
        on_arrival = scheduler.on_arrival
        on_finish = scheduler.on_finish
        on_wakeup = scheduler.on_wakeup
        notify_started = scheduler.notify_started
        notify_finished = scheduler.notify_finished
        poke = scheduler.poke
        blockers = self._blocker_ids
        start_times = self._start_times
        sink = self._metrics_sink
        record_append = self._completed.append
        trusted_completed = CompletedJob._trusted
        timer_times = self._timer_times
        trace = self.trace
        record_trace = self._record_trace
        timer_kind = EventKind.TIMER
        finish_kind = EventKind.JOB_FINISH
        inf = math.inf
        index = self._arrival_index
        clock = self.clock
        events_processed = self._events_processed
        completed_count = self._completed_count
        pending = self._pending

        def start_jobs(started):
            # Allocate + bookkeep every job the scheduler returned; the
            # closure reads the enclosing ``clock`` so it always sees the
            # current batch time.
            for job in started:
                jid = job.job_id
                if jid in start_times:
                    raise SimulationError(
                        f"scheduler tried to start job {jid} twice"
                    )
                machine.allocate(job, clock)
                start_times[jid] = clock
                notify_started(job, clock)
                runtime = job.runtime
                estimate = job.estimate
                push_finish(
                    clock + (runtime if runtime < estimate else estimate), job
                )
                if trace is not None:
                    record_trace("start", job)

        try:
            while True:
                queue_time = heap[0][0][0] if heap else inf
                if index < n_jobs:
                    arrival_time = submit_times[index]
                    batch_time = (
                        arrival_time if arrival_time < queue_time else queue_time
                    )
                else:
                    batch_time = queue_time
                if batch_time >= stop_time:
                    return
                if batch_time < clock - 1e-9:
                    raise SimulationError(
                        f"time went backwards: {clock} -> {batch_time}"
                    )
                if batch_time > clock:
                    clock = batch_time
                    self.clock = batch_time
                # Prune timer-dedup entries for strictly-past timestamps:
                # their TIMER events have fired and new requests clamp to
                # >= clock, so they can never match again — without this
                # the set grows monotonically over long traces.  Entries
                # at exactly ``clock`` stay: their events may be in this
                # very batch, and the timer handler discards them on the
                # exact float.  The scan is amortized: it runs only once
                # the set doubles past the last prune's survivor count,
                # so a deep queue of genuinely live future timers is not
                # rescanned every batch.
                if len(timer_times) > self._timer_prune_at:
                    timer_times.difference_update(
                        [t for t in timer_times if t < clock]
                    )
                    self._timer_prune_at = max(256, 2 * len(timer_times))
                # Arrival-only instants (the common case under light
                # contention) skip the queue entirely.
                batch = pop_batch(batch_time) if queue_time == batch_time else ()
                first = index
                while index < n_jobs and submit_times[index] == batch_time:
                    index += 1
                events_processed += len(batch) + (index - first)

                if batch:
                    n_batch = len(batch)
                    n_finish = 0
                    while (
                        n_finish < n_batch
                        and batch[n_finish].kind is finish_kind
                    ):
                        n_finish += 1
                    # Phase 1: every completion at this instant releases
                    # its processors and records its outcome.
                    for k in range(n_finish):
                        job = batch[k].job
                        jid = job.job_id
                        if blockers and jid in blockers:
                            machine.release(job, clock)
                            continue
                        start = start_times.get(jid)
                        if start is None:
                            raise SimulationError(
                                f"finish event for never-started job {jid}"
                            )
                        machine.release(job, clock)
                        notify_finished(job, clock)
                        record = trusted_completed(job, start, clock)
                        if sink is not None:
                            # Streaming mode: the sink folds the record
                            # into its O(1) accumulators and the engine
                            # drops every per-job trace of the finished
                            # job, so long-lived sessions stay bounded.
                            sink.observe(record)
                            del start_times[jid]
                        else:
                            record_append(record)
                        completed_count += 1
                        pending -= 1
                        if trace is not None:
                            record_trace("finish", job)
                    # Phase 2: scheduling reactions to the completions.
                    for k in range(n_finish):
                        job = batch[k].job
                        if blockers and job.job_id in blockers:
                            # The scheduler never saw the blocker, but its
                            # plan may anchor starts at the window's end —
                            # poke it.
                            started = poke(clock)
                        else:
                            started = on_finish(job, clock)
                        if started:
                            start_jobs(started)
                    for k in range(n_finish, n_batch):
                        event = batch[k]
                        if event.kind is timer_kind:
                            timer_times.discard(clock)
                            started = on_wakeup(clock)
                            if started:
                                start_jobs(started)
                        else:
                            # Queue arrivals are only AR blockers (workload
                            # arrivals are fed, never pushed); the id check
                            # guards against future misuse.
                            job = event.job
                            if job.job_id in blockers:
                                machine.allocate(job, clock)
                                push_finish(clock + job.runtime, job)
                            else:
                                started = on_arrival(job, clock)
                                if trace is not None:
                                    record_trace("arrive", job)
                                if started:
                                    start_jobs(started)
                if index > first:
                    for job in materialize(first, index):
                        started = on_arrival(job, clock)
                        # Recorded after the scheduler reacted so the trace
                        # reflects the post-event state (queue depth
                        # including the job if it queued).
                        if trace is not None:
                            record_trace("arrive", job)
                        if started:
                            start_jobs(started)
        finally:
            self._arrival_index = index
            self._events_processed = events_processed
            self._completed_count = completed_count
            self._pending = pending

    def _finalize(self) -> SimulationResult:
        self._finalized = True
        if self._pending != 0:
            stuck = [j.job_id for j in self.scheduler.queued_jobs]
            raise SchedulingError(
                f"simulation drained its events with {self._pending} jobs "
                f"unfinished (still queued: {stuck[:10]}{'...' if len(stuck) > 10 else ''})"
            )
        if self._completed_count != self._feed.n:
            raise SimulationError(
                f"completed {self._completed_count} of {self._feed.n} jobs"
            )

        # The feed is submit-sorted, so the first submit time is the min.
        makespan = self.clock - (
            self._feed.submit_times[0] if self._feed.n else 0.0
        )
        if self._metrics_sink is not None:
            metrics = self._metrics_sink.run_metrics(
                utilization=self.machine.utilization(), makespan=makespan
            )
        else:
            metrics = summarize(
                self._completed,
                utilization=self.machine.utilization(),
                makespan=makespan,
            )
        return SimulationResult(
            workload_name=self._feed.name,
            scheduler_name=self.scheduler.describe(),
            metrics=metrics,
            events_processed=self._events_processed,
            trace=self.trace,
        )

    # -- public API -----------------------------------------------------------

    @property
    def watermark(self) -> float:
        """The pause boundary: every batch strictly before it is processed."""
        return self._watermark

    @property
    def completed_count(self) -> int:
        """Number of jobs that have finished so far."""
        return self._completed_count

    @property
    def metrics_sink(self):
        """The streaming metrics sink, or None in batch mode."""
        return self._metrics_sink

    @property
    def completed_records(self) -> tuple[CompletedJob, ...]:
        """Completion records held in memory.

        Batch mode: every finished job.  Streaming mode: only the sink's
        watched jobs — everything else was folded into the sink's O(1)
        aggregates and dropped.
        """
        if self._metrics_sink is not None:
            return tuple(self._metrics_sink.watched_records)
        return tuple(self._completed)

    def run(self) -> SimulationResult:
        """Run to completion and return the result.  Single use."""
        if self._ran:
            raise SimulationError("a Simulator instance can only run once")
        self._ran = True
        self._prime()
        self._advance_until(math.inf)
        return self._finalize()

    def run_until(self, job_count: int) -> None:
        """Advance until just before workload job ``job_count`` arrives.

        Processes every batch whose timestamp is strictly before the
        submit time of ``workload[job_count]`` and pauses at that batch
        boundary — the exact point where a simulation of only the first
        ``job_count`` jobs stops being distinguishable from this one, so a
        :meth:`snapshot` taken here can seed either continuation.  May be
        called repeatedly with non-decreasing horizons; finish with
        :meth:`drain`.
        """
        if self._finalized:
            raise SimulationError("run_until() after the simulation finished")
        if not 0 < job_count < self._feed.n:
            raise SimulationError(
                f"run_until() needs 0 < job_count < {self._feed.n}, "
                f"got {job_count} (use run() or drain() for a full run)"
            )
        if not self._primed:
            if self._ran:
                raise SimulationError("run_until() after run() on the same instance")
            self._ran = True
            self._prime()
        stop_time = self._feed.submit_times[job_count]
        if stop_time < self._watermark:
            raise SimulationError(
                f"run_until() horizons must be non-decreasing: job {job_count} "
                f"arrives at {stop_time}, before the previous stop at "
                f"{self._watermark}"
            )
        self._advance_until(stop_time)
        self._watermark = stop_time

    def run_until_time(self, stop_time: float) -> None:
        """Advance to the batch boundary at wall-clock ``stop_time``.

        Processes every batch whose timestamp is strictly before
        ``stop_time`` and pauses, leaving events at exactly ``stop_time``
        unprocessed — the same boundary guarantee as :meth:`run_until`,
        but anchored to simulated time instead of a job-count horizon, so
        it works for live sessions whose future arrivals are unknown:
        empty workloads (a zero-job session priming itself), stops beyond
        the last arrival (a queue draining with nothing left to submit),
        and repeated non-decreasing stops are all legal.  After the pause
        a :meth:`snapshot` is valid: ``delivered`` arrivals are exactly
        the jobs with ``submit_time < stop_time``.

        Raises :class:`~repro.errors.SimulationError` on a non-monotone
        stop (``stop_time`` below a previous watermark — the state for
        times already simulated is gone, and continuing would silently
        drift), a non-finite or negative stop, use after :meth:`run`, or
        use after the simulation finished.
        """
        if self._finalized:
            raise SimulationError("run_until_time() after the simulation finished")
        if not math.isfinite(stop_time) or stop_time < 0:
            raise SimulationError(
                f"run_until_time() needs a finite stop time >= 0, got {stop_time}"
            )
        if not self._primed:
            if self._ran:
                raise SimulationError(
                    "run_until_time() after run() on the same instance"
                )
            self._ran = True
            self._prime()
        if stop_time < self._watermark:
            raise SimulationError(
                f"run_until_time() stops must be non-decreasing: got "
                f"{stop_time}, before the previous stop at {self._watermark}"
            )
        self._advance_until(stop_time)
        self._watermark = stop_time

    def extend_workload(self, workload: Workload | JobTable) -> None:
        """Swap in a workload that extends this one with future arrivals.

        The streaming-submission primitive behind the serve layer's
        :class:`~repro.serve.Session`: arrivals are fed lazily, so a
        paused simulation can accept new jobs by replacing the workload
        with a superset — provided the simulated history stays intact.
        Accepts either a row :class:`Workload` or a columnar
        :class:`JobTable` (two table-fed feeds validate their shared
        prefix by column comparison, no ``Job`` objects involved).
        Enforced, with a clear
        :class:`~repro.errors.SimulationError` instead of silent drift:

        * same machine size;
        * the already-delivered arrival prefix is identical job for job;
        * every undelivered job (old or new) is submitted at or after
          the watermark — submitting into the simulated past would
          desynchronize ``delivered`` from the workload history that
          :meth:`resume` validates;
        * no previously-pending job vanishes;
        * no job id collides with advance-reservation blocker ids.
        """
        if self._finalized:
            raise SimulationError("extend_workload() after the simulation finished")
        old_feed = self._feed
        new_feed = make_feed(workload)
        if new_feed.max_procs != old_feed.max_procs:
            raise SimulationError(
                f"extend_workload() cannot change the machine size "
                f"({old_feed.max_procs} -> {new_feed.max_procs} procs)"
            )
        delivered = self._arrival_index
        if new_feed.n < delivered:
            raise SimulationError(
                f"extend_workload() got {new_feed.n} jobs but "
                f"{delivered} arrivals were already simulated"
            )
        mismatch = old_feed.first_prefix_mismatch(new_feed, delivered)
        if mismatch is not None:
            changed = old_feed.materialize(mismatch, mismatch + 1)[0]
            raise SimulationError(
                f"extend_workload() disagrees with the simulated history: "
                f"delivered job {changed.job_id} changed"
            )
        # The feed is submit-sorted, so the first undelivered job is the
        # earliest; checking it checks them all.
        if new_feed.n > delivered and new_feed.submit_times[delivered] < self._watermark:
            offender = new_feed.materialize(delivered, delivered + 1)[0]
            raise SimulationError(
                f"cannot submit job {offender.job_id} at t={offender.submit_time}, "
                f"in the simulated past (time is already at "
                f"{self._watermark})"
            )
        lost = old_feed.ids_from(delivered) - new_feed.ids_from(delivered)
        if lost:
            raise SimulationError(
                f"extend_workload() dropped pending jobs {sorted(lost)[:10]}"
            )
        if self._blocker_ids and new_feed.has_id_at_or_above(
            self._BLOCKER_ID_BASE, delivered
        ):
            raise SimulationError(
                f"workload job ids must stay below {self._BLOCKER_ID_BASE} "
                "when advance reservations are active"
            )
        if self._primed:
            self._pending += new_feed.n - old_feed.n
        self._feed = new_feed

    def drain(self) -> SimulationResult:
        """Run the remaining events to completion and return the result.

        The terminal step after :meth:`run_until` / :meth:`resume`;
        subject to the same single-use rule as :meth:`run`.
        """
        if not self._primed:
            raise SimulationError("drain() before run_until() or resume()")
        if self._finalized:
            raise SimulationError("drain() after the simulation finished")
        self._advance_until(math.inf)
        return self._finalize()

    def snapshot(self) -> SimulationSnapshot:
        """Capture the paused simulation's state as an independent copy.

        Must follow :meth:`run_until` (the batch-boundary guarantee is
        what makes the state reusable).  The running simulation is not
        disturbed and may be advanced further afterwards.
        """
        if not self._primed:
            raise SimulationError("snapshot() before run_until()")
        if self._finalized:
            raise SimulationError("snapshot() after the simulation finished")
        return SimulationSnapshot(
            clock=self.clock,
            events=self._events.clone(),
            scheduler=self.scheduler.fork(),
            machine=self.machine.clone(),
            timer_times=set(self._timer_times),
            timer_prune_at=self._timer_prune_at,
            completed=tuple(self._completed),
            start_times=dict(self._start_times),
            events_processed=self._events_processed,
            blocker_ids=frozenset(self._blocker_ids),
            delivered=self._arrival_index,
            watermark=self._watermark,
            total_procs=self.machine.total_procs,
            completed_count=self._completed_count,
            metrics_sink=(
                self._metrics_sink.fork()
                if self._metrics_sink is not None
                else None
            ),
        )

    @classmethod
    def resume(
        cls,
        snapshot: SimulationSnapshot,
        workload: Workload | JobTable,
        *,
        trace: EventTrace | None = None,
        metrics_sink=_INHERIT_SINK,
    ) -> "Simulator":
        """Rebuild a live simulator from ``snapshot`` on ``workload``.

        ``workload`` must agree with the snapshot's history: same machine
        size, and exactly the snapshot's ``delivered`` jobs submitted
        before its watermark (the simulated prefix).  The returned
        simulator continues from the pause point; call :meth:`drain` (or
        :meth:`run_until` for further checkpoints) on it.  The snapshot is
        left intact and can seed more branches.

        ``metrics_sink`` defaults to inheriting the snapshot's mode: a
        streaming snapshot forks its sink for the branch (each branch
        accumulates independently), a batch snapshot stays batch.  Pass a
        sink explicitly to replace the fork; a streaming snapshot cannot
        resume without one — its pre-pause records are gone, so only a
        sink carrying their aggregates can finish the run.
        """
        feed = make_feed(workload)
        if feed.max_procs != snapshot.total_procs:
            raise SimulationError(
                f"cannot resume on a {feed.max_procs}-proc workload: the "
                f"snapshot was taken on {snapshot.total_procs} processors"
            )
        if snapshot.blocker_ids and feed.has_id_at_or_above(cls._BLOCKER_ID_BASE):
            raise SimulationError(
                f"workload job ids must stay below {cls._BLOCKER_ID_BASE} "
                "when resuming a snapshot with advance reservations"
            )
        delivered = bisect_left(feed.submit_times, snapshot.watermark)
        if delivered != snapshot.delivered:
            raise SimulationError(
                f"workload disagrees with the snapshot's history: "
                f"{delivered} jobs submitted before t={snapshot.watermark}, "
                f"but the snapshot simulated {snapshot.delivered} arrivals"
            )
        if metrics_sink is cls._INHERIT_SINK:
            metrics_sink = (
                snapshot.metrics_sink.fork()
                if snapshot.metrics_sink is not None
                else None
            )
        elif metrics_sink is None and snapshot.metrics_sink is not None:
            raise SimulationError(
                "a streaming snapshot cannot resume without a metrics sink: "
                "its pre-pause per-job records were already folded away"
            )
        sim = cls(workload, snapshot.scheduler.fork(), trace=trace,
                  metrics_sink=metrics_sink, _feed=feed)
        sim.machine = snapshot.machine.clone()
        sim.clock = snapshot.clock
        sim._events = snapshot.events.clone()
        sim._completed = list(snapshot.completed)
        sim._completed_count = snapshot.completed_count
        sim._start_times = dict(snapshot.start_times)
        sim._events_processed = snapshot.events_processed
        sim._timer_times = set(snapshot.timer_times)
        sim._timer_prune_at = snapshot.timer_prune_at
        sim._blocker_ids = set(snapshot.blocker_ids)
        sim._arrival_index = delivered
        sim._pending = feed.n - snapshot.completed_count
        sim._watermark = snapshot.watermark
        sim._ran = True
        sim._primed = True
        sim.scheduler.rebind(sim.machine, sim._request_wakeup)
        return sim


def simulate(
    workload: Workload | JobTable,
    scheduler: Scheduler,
    *,
    trace: EventTrace | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper: build a Simulator and run it.

    Accepts either a row :class:`Workload` or a columnar
    :class:`JobTable`; the table form is faster (jobs materialize lazily
    through the trusted constructor, batch by batch).
    """
    return Simulator(workload, scheduler, trace=trace).run()

"""Events and the event queue.

The simulation is driven by three event kinds:

* ``JOB_FINISH`` — a running job releases its processors;
* ``TIMER`` — a scheduler-requested wakeup (e.g. a reservation coming due
  at a time no arrival or completion happens to coincide with);
* ``JOB_ARRIVAL`` — a job enters the wait queue.

Tie-breaking at equal timestamps is load-bearing for correctness and
reproducibility: finishes are processed first (so a reservation anchored at
a completion sees the freed processors), then timers, then arrivals; events
of the same kind preserve insertion order via a monotone sequence number.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

from repro.errors import SimulationError
from repro.workload.job import Job

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    JOB_FINISH = 0
    TIMER = 1
    JOB_ARRIVAL = 2


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence in virtual time.

    ``job`` is None for TIMER events and required for the job events.
    """

    time: float
    kind: EventKind
    job: Job | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.time):
            raise SimulationError(f"event time must be finite, got {self.time}")
        if self.kind is not EventKind.TIMER and self.job is None:
            raise SimulationError(f"{self.kind.name} events require a job")

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        return (self.time, int(self.kind), seq)


class EventQueue:
    """A stable min-heap of events ordered by (time, kind, insertion)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        # Plain integer rather than itertools.count so the counter can be
        # captured and restored by clone() — a resumed simulation must hand
        # out the exact sequence numbers the monolithic run would have, or
        # same-timestamp tie-breaking diverges.
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event; inserting into the past is a simulation bug."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (event.sort_key(seq), event))

    def push_finish(
        self,
        time: float,
        job: Job,
        _new=object.__new__,
        _set=object.__setattr__,
        _cls=Event,
        _kind=EventKind.JOB_FINISH,
        _kind_int=int(EventKind.JOB_FINISH),
        _heappush=heapq.heappush,
    ) -> None:
        """Build and insert a trusted JOB_FINISH event in one call.

        Engine-internal fast path for the started-job loop: one call per
        start instead of three (construct, ``sort_key``, :meth:`push`),
        and the ``__post_init__`` finiteness check is skipped because the
        engine computes finish times as ``clock + effective_runtime``,
        both finite by construction (the clock only ever takes values
        from validated submit times and previously pushed finite events).
        Scheduler-supplied times (timer wakeups) still go through the
        validated ``Event`` constructor and :meth:`push`.
        """
        event = _new(_cls)
        _set(event, "time", time)
        _set(event, "kind", _kind)
        _set(event, "job", job)
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, ((time, _kind_int, seq), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[1]

    def pop_batch(self, time: float) -> list[Event]:
        """Remove and return every event scheduled at exactly ``time``.

        The returned list is in (kind, insertion) order — the same order
        repeated :meth:`pop` calls would produce.  One direct peek at the
        heap root per event replaces the ``next_time`` property re-read the
        engine's drain loop used to pay per event (it is the hottest loop
        of a simulation).
        """
        heap = self._heap
        batch: list[Event] = []
        while heap and heap[0][0][0] == time:
            batch.append(heapq.heappop(heap)[1])
        return batch

    def clone(self) -> "EventQueue":
        """Independent copy (for simulation snapshots).

        Shallow-copies the heap — entries are immutable ``(key, Event)``
        tuples — and carries the sequence counter over, so events pushed
        after the clone order identically in both queues.
        """
        dup = EventQueue()
        dup._heap = list(self._heap)
        dup._seq = self._seq
        return dup

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise SimulationError("peek at an empty event queue")
        return self._heap[0][1]

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event (inf when empty)."""
        return self._heap[0][1].time if self._heap else math.inf

    def drain(self) -> Iterator[Event]:
        """Yield all remaining events in order (consumes the queue)."""
        while self._heap:
            yield self.pop()

"""Optional audit trace of simulation events.

When attached to a :class:`~repro.sim.engine.Simulator`, an
:class:`EventTrace` records every arrival, start, and finish with its
timestamp and queue depth — enough to reconstruct the whole schedule, debug
a scheduler decision, or feed external visualization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceRecord", "EventTrace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    action: str  # "arrive" | "start" | "finish"
    job_id: int
    procs: int
    queue_length: int
    free_procs: int


class EventTrace:
    """Append-only in-memory trace with an optional size bound."""

    def __init__(self, max_records: int | None = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be > 0 or None, got {max_records}")
        self.max_records = max_records
        self._records: list[TraceRecord] = []
        self.dropped = 0

    def record(
        self,
        time: float,
        action: str,
        job_id: int,
        procs: int,
        queue_length: int,
        free_procs: int,
    ) -> None:
        if self.max_records is not None and len(self._records) >= self.max_records:
            self.dropped += 1
            return
        self._records.append(
            TraceRecord(time, action, job_id, procs, queue_length, free_procs)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def filter(self, action: str) -> list[TraceRecord]:
        """Records of one action kind, in time order."""
        return [r for r in self._records if r.action == action]

    def as_rows(self) -> list[tuple]:
        """Tuples suitable for CSV export."""
        return [
            (r.time, r.action, r.job_id, r.procs, r.queue_length, r.free_procs)
            for r in self._records
        ]

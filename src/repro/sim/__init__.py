"""Discrete-event simulation substrate.

A minimal but complete event-driven core: a priority event queue with
deterministic tie-breaking (:mod:`repro.sim.events`), the simulation engine
that advances virtual time and drives a scheduler (:mod:`repro.sim.engine`),
and an optional audit trace of every event (:mod:`repro.sim.trace`).
"""

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.engine import Simulator, SimulationResult
from repro.sim.trace import EventTrace, TraceRecord

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "Simulator",
    "SimulationResult",
    "EventTrace",
    "TraceRecord",
]

"""Time-series extraction from an event trace.

The :class:`~repro.sim.trace.EventTrace` records queue depth and free
processors at every arrival/start/finish; these helpers turn that log
into analyzable step-function series and quick terminal sparklines:

* :func:`queue_depth_series` / :func:`busy_procs_series` — lists of
  ``(time, value)`` breakpoints;
* :func:`sample_series` — resample a step series onto a uniform grid
  (numpy-friendly);
* :func:`sparkline` — eight-level block rendering for terminals;
* :func:`time_weighted_mean` — the correct average of a step series.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.sim.trace import EventTrace

__all__ = [
    "queue_depth_series",
    "busy_procs_series",
    "sample_series",
    "sparkline",
    "time_weighted_mean",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def queue_depth_series(trace: EventTrace) -> list[tuple[float, int]]:
    """(time, waiting jobs) after every traced event."""
    if len(trace) == 0:
        raise ReproError("empty trace")
    return [(record.time, record.queue_length) for record in trace]


def busy_procs_series(trace: EventTrace, total_procs: int) -> list[tuple[float, int]]:
    """(time, busy processors) after every traced event."""
    if len(trace) == 0:
        raise ReproError("empty trace")
    if total_procs <= 0:
        raise ReproError(f"total_procs must be > 0, got {total_procs}")
    return [(record.time, total_procs - record.free_procs) for record in trace]


def sample_series(
    series: list[tuple[float, float]] | list[tuple[float, int]],
    n_samples: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Resample a step series onto ``n_samples`` uniform timestamps.

    The value at each sample is the most recent breakpoint's value
    (zero-order hold).  Returns (times, values) arrays.
    """
    if not series:
        raise ReproError("empty series")
    if n_samples < 1:
        raise ReproError(f"n_samples must be >= 1, got {n_samples}")
    times = np.array([t for t, _ in series], dtype=float)
    values = np.array([v for _, v in series], dtype=float)
    grid = np.linspace(times[0], times[-1], n_samples)
    indices = np.searchsorted(times, grid, side="right") - 1
    indices = np.clip(indices, 0, len(values) - 1)
    return grid, values[indices]


def sparkline(
    series: list[tuple[float, float]] | list[tuple[float, int]],
    width: int = 60,
) -> str:
    """Eight-level block rendering of a (resampled) step series."""
    _, sampled = sample_series(series, n_samples=width)
    peak = float(sampled.max())
    if peak <= 0:
        return _BLOCKS[0] * width
    levels = np.minimum(
        (sampled / peak * (len(_BLOCKS) - 1) + 0.5).astype(int), len(_BLOCKS) - 1
    )
    return "".join(_BLOCKS[level] for level in levels)


def time_weighted_mean(series: list[tuple[float, float]] | list[tuple[float, int]]) -> float:
    """Mean of a step function over its span (not the breakpoint average)."""
    if not series:
        raise ReproError("empty series")
    if len(series) == 1:
        return float(series[0][1])
    total = 0.0
    for (t0, v0), (t1, _) in zip(series, series[1:]):
        total += v0 * (t1 - t0)
    span = series[-1][0] - series[0][0]
    if span <= 0:
        return float(series[0][1])
    return total / span

"""Arrival feeds: the engine's lazy view of a workload.

:class:`~repro.sim.engine.Simulator` never pushes workload arrivals onto
its event queue — it merges them into batches from a sorted source (see
the checkpoint/fork rationale in :mod:`repro.sim.engine`).  The *feed*
is that source, abstracted so the engine can consume either form of a
workload:

* :class:`RowArrivalFeed` — wraps a row :class:`~repro.workload.job.Workload`;
  the jobs already exist, so materialization is a slice.
* :class:`TableArrivalFeed` — wraps a columnar
  :class:`~repro.workload.table.JobTable` and materializes ``Job``
  objects *lazily per batch* through the trusted bulk constructor
  (:meth:`Job._from_trusted_columns`): the table proved every per-row
  invariant at construction, so no ``__post_init__`` re-validation and —
  until a batch actually arrives — no ``Job`` objects at all.  This is
  what kills the per-cell ``to_workload()`` tax: a simulation's warm-up,
  priming, and snapshot machinery touch only the submit-time array.

Both feeds expose the same small surface: ``submit_times`` (a plain
Python list of floats, non-decreasing — binary-searchable and cheap to
index from the hot loop), ``materialize(i, j)`` (jobs for rows ``[i, j)``,
forward-only for the table form), and the prefix/id helpers
``extend_workload`` and ``resume`` validate against.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workload.job import Job, Workload
from repro.workload.table import _ALL_COLUMNS, JobTable

__all__ = ["RowArrivalFeed", "TableArrivalFeed", "make_feed"]


class RowArrivalFeed:
    """Feed over an already-materialized row :class:`Workload`."""

    __slots__ = ("workload", "jobs", "submit_times", "n")

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self.jobs = workload.jobs
        self.submit_times = [job.submit_time for job in self.jobs]
        self.n = len(self.jobs)

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def max_procs(self) -> int:
        return self.workload.max_procs

    def materialize(self, i: int, j: int) -> tuple[Job, ...]:
        """Jobs for rows ``[i, j)``."""
        return self.jobs[i:j]

    def as_workload(self) -> Workload:
        return self.workload

    def has_id_at_or_above(self, base: int, start: int = 0) -> bool:
        """Whether any job at row >= ``start`` has ``job_id >= base``."""
        return any(job.job_id >= base for job in self.jobs[start:])

    def ids_from(self, i: int) -> set[int]:
        """Job ids of rows ``[i, n)``."""
        return {job.job_id for job in self.jobs[i:]}

    def first_prefix_mismatch(self, other, k: int) -> int | None:
        """First row < ``k`` where this feed and ``other`` disagree."""
        return _first_prefix_mismatch(self, other, k)


class TableArrivalFeed:
    """Feed over a columnar :class:`JobTable`; jobs materialize lazily.

    Construction converts each column to a builtin-typed Python list once
    (numpy scalar indexing is far slower than list indexing, and the hot
    loop reads ``submit_times`` constantly) and verifies submit ordering —
    the one workload invariant the table deliberately does not require
    (SWF ingest constructs, then sorts).  ``materialize`` then bulk-builds
    forward in blocks through the trusted constructor; the engine's
    arrival index is monotone, so nothing is ever built twice and a run
    that pauses early builds at most one block past its pause point.
    """

    __slots__ = (
        "table",
        "submit_times",
        "n",
        "_field_lists",
        "_jobs",
        "_workload",
    )

    def __init__(self, table: JobTable) -> None:
        self.table = table
        if not table._submit_is_sorted():
            arr = table.columns["submit_time"]
            i = int((arr[1:] < arr[:-1]).nonzero()[0][0]) + 1
            ids = table.columns["job_id"]
            raise WorkloadError(
                f"jobs must be ordered by submit_time; job {ids[i]} "
                f"submitted at {arr[i]} after {arr[i - 1]}"
            )
        self._field_lists = table.field_lists()
        self.submit_times = self._field_lists[1]
        self.n = len(self.submit_times)
        self._jobs: list[Job] = []
        self._workload: Workload | None = None

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def max_procs(self) -> int:
        return self.table.max_procs

    #: Rows materialized per demand miss.  Per-row construction costs a
    #: Python call per job; per-block bulk construction amortizes it to
    #: one sliced-column pass, and over-building at most a block keeps a
    #: paused run from ever materializing a distant tail.
    _BLOCK = 1024

    def materialize(self, i: int, j: int) -> list[Job]:
        """Jobs for rows ``[i, j)``, bulk-building a block on first demand."""
        jobs = self._jobs
        built = len(jobs)
        if j > built:
            want = built + self._BLOCK
            target = self.n if want > self.n else (want if want > j else j)
            jobs.extend(
                Job._from_trusted_columns(
                    [column[built:target] for column in self._field_lists]
                )
            )
        return jobs[i:j]

    def as_workload(self) -> Workload:
        """Row form of the whole table (trusted, cached; reuses built jobs)."""
        if self._workload is None:
            jobs = tuple(self.materialize(0, self.n))
            self._workload = Workload._trusted(
                jobs, self.max_procs, self.name, dict(self.table.metadata)
            )
        return self._workload

    def has_id_at_or_above(self, base: int, start: int = 0) -> bool:
        ids = self.table.columns["job_id"]
        if start:
            ids = ids[start:]
        return bool(ids.size) and bool((ids >= base).any())

    def ids_from(self, i: int) -> set[int]:
        return set(self.table.columns["job_id"][i:].tolist())

    def first_prefix_mismatch(self, other, k: int) -> int | None:
        if isinstance(other, TableArrivalFeed):
            first: int | None = None
            mine, theirs = self.table.columns, other.table.columns
            for name in _ALL_COLUMNS:
                diff = (mine[name][:k] != theirs[name][:k]).nonzero()[0]
                if diff.size and (first is None or diff[0] < first):
                    first = int(diff[0])
            return first
        return _first_prefix_mismatch(self, other, k)


def _first_prefix_mismatch(feed, other, k: int) -> int | None:
    for index, (mine, theirs) in enumerate(
        zip(feed.materialize(0, k), other.materialize(0, k))
    ):
        if mine != theirs:
            return index
    return None


def make_feed(source: Workload | JobTable):
    """Build the right feed for a row workload or a columnar table."""
    if isinstance(source, JobTable):
        return TableArrivalFeed(source)
    return RowArrivalFeed(source)

"""Per-job scheduling metrics as defined in the paper (Section 2).

* wait time       = start - submit
* turnaround time = finish - submit
* slowdown        = turnaround / runtime
* bounded slowdown = (wait + max(runtime, T)) / max(runtime, T), T = 10 s

The 10-second bound "limits the influence of very short jobs on the metric"
(the OCR capture reads "1 seconds"; 10 s is the standard value from
Mu'alem & Feitelson 2001 which the paper follows — see DESIGN.md).
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = [
    "BOUNDED_SLOWDOWN_THRESHOLD",
    "wait_time",
    "turnaround_time",
    "slowdown",
    "bounded_slowdown",
]

#: The bound T in the bounded-slowdown definition, in seconds.
BOUNDED_SLOWDOWN_THRESHOLD = 10.0


def _check(submit: float, start: float, finish: float) -> None:
    if start < submit - 1e-9:
        raise SimulationError(f"job started ({start}) before submission ({submit})")
    if finish < start - 1e-9:
        raise SimulationError(f"job finished ({finish}) before starting ({start})")


def wait_time(submit: float, start: float) -> float:
    """Seconds spent in the wait queue."""
    if start < submit - 1e-9:
        raise SimulationError(f"job started ({start}) before submission ({submit})")
    return max(start - submit, 0.0)


def turnaround_time(submit: float, finish: float) -> float:
    """Seconds from submission to completion (the user-visible latency)."""
    if finish < submit - 1e-9:
        raise SimulationError(f"job finished ({finish}) before submission ({submit})")
    return max(finish - submit, 0.0)


def slowdown(submit: float, start: float, finish: float) -> float:
    """Unbounded slowdown: turnaround / runtime.

    Diverges for very short jobs — the paper (and this library's reports)
    use :func:`bounded_slowdown` instead; this is provided for completeness.
    """
    _check(submit, start, finish)
    runtime = finish - start
    if runtime <= 0:
        raise SimulationError("slowdown undefined for zero-runtime job")
    return (finish - submit) / runtime


def bounded_slowdown(
    submit: float,
    start: float,
    finish: float,
    threshold: float = BOUNDED_SLOWDOWN_THRESHOLD,
) -> float:
    """Bounded slowdown: ``(wait + max(runtime, T)) / max(runtime, T)``.

    Always >= 1; equals 1 for a job that starts the moment it is submitted.
    """
    _check(submit, start, finish)
    if threshold <= 0:
        raise SimulationError(f"bounded-slowdown threshold must be > 0, got {threshold}")
    runtime = max(finish - start, 0.0)
    denom = max(runtime, threshold)
    return (wait_time(submit, start) + denom) / denom

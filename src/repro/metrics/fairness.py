"""Fairness metrics for schedule comparison.

Backfilling trades fairness for utilization: a job may be overtaken by
later arrivals.  The paper's group quantified this in follow-up work
(Sabin & Sadayappan, "Unfairness in parallel job scheduling"); this module
implements the practical core of that methodology:

* :func:`start_time_deviations` — per-job start-time difference between a
  schedule and a *reference* schedule of the same workload (conventionally
  strict FCFS space sharing, under which nobody is ever overtaken);
* :func:`fairness_report` — aggregate unfairness measures: how many jobs
  were served later than the reference, by how much, and the benefit side
  (jobs served earlier) for context.

A scheduler with zero "unfair delay" never makes any job worse off than
the no-backfill baseline; EASY and conservative both do, in different
places — that asymmetry is exactly the category-wise story of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.sim.engine import SimulationResult

__all__ = ["FairnessReport", "start_time_deviations", "fairness_report"]


def start_time_deviations(
    schedule: SimulationResult,
    reference: SimulationResult,
) -> dict[int, float]:
    """Per-job ``start(schedule) - start(reference)`` in seconds.

    Positive values mean the job started *later* than under the reference
    policy (it was effectively overtaken); negative values mean it
    benefited.  Both results must cover the same job ids.
    """
    mine = schedule.start_times()
    theirs = reference.start_times()
    if set(mine) != set(theirs):
        missing = set(mine).symmetric_difference(theirs)
        raise ReproError(
            f"schedules cover different jobs (symmetric difference: "
            f"{sorted(missing)[:10]} ...)"
        )
    return {job_id: mine[job_id] - theirs[job_id] for job_id in mine}


@dataclass(frozen=True)
class FairnessReport:
    """Aggregate unfairness of a schedule against a reference."""

    jobs: int
    delayed_count: int  # started later than the reference
    advanced_count: int  # started earlier
    mean_unfair_delay: float  # mean positive deviation over *delayed* jobs
    max_unfair_delay: float
    mean_benefit: float  # mean |negative deviation| over advanced jobs
    net_mean_deviation: float  # mean signed deviation over all jobs

    @property
    def delayed_fraction(self) -> float:
        return self.delayed_count / self.jobs if self.jobs else 0.0


def fairness_report(
    schedule: SimulationResult,
    reference: SimulationResult,
    *,
    tolerance: float = 1e-6,
) -> FairnessReport:
    """Summarize :func:`start_time_deviations` into a :class:`FairnessReport`."""
    deviations = start_time_deviations(schedule, reference)
    if not deviations:
        raise ReproError("cannot compute fairness of an empty schedule")
    delayed = [d for d in deviations.values() if d > tolerance]
    advanced = [-d for d in deviations.values() if d < -tolerance]
    return FairnessReport(
        jobs=len(deviations),
        delayed_count=len(delayed),
        advanced_count=len(advanced),
        mean_unfair_delay=sum(delayed) / len(delayed) if delayed else 0.0,
        max_unfair_delay=max(delayed) if delayed else 0.0,
        mean_benefit=sum(advanced) / len(advanced) if advanced else 0.0,
        net_mean_deviation=sum(deviations.values()) / len(deviations),
    )

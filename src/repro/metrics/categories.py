"""Job categorization (paper Table 1 and Section 5.2).

Two orthogonal classifications:

* **Shape** (Table 1): runtime <= 1 h is *Short* else *Long*; processors
  <= 8 is *Narrow* else *Wide*, yielding SN / SW / LN / LW.  The paper
  classifies on the *actual* run time (the study's whole point is to see
  how schedulers treat truly-short vs truly-long work).
* **Estimate quality** (Section 5.2): estimate <= 2x runtime is *well
  estimated*, otherwise *poorly estimated*.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.workload.job import Job

__all__ = [
    "SHORT_LONG_BOUNDARY_SECONDS",
    "NARROW_WIDE_BOUNDARY_PROCS",
    "WELL_ESTIMATED_MAX_FACTOR",
    "Category",
    "EstimateQuality",
    "categorize",
    "estimate_quality",
    "category_masks",
    "quality_masks",
    "category_counts",
]

#: Table 1: jobs running at most one hour are Short.
SHORT_LONG_BOUNDARY_SECONDS = 3600.0

#: Table 1: jobs requesting at most 8 processors are Narrow.
NARROW_WIDE_BOUNDARY_PROCS = 8

#: Section 5.2: estimate <= 2x runtime is "well estimated".
WELL_ESTIMATED_MAX_FACTOR = 2.0


class Category(str, Enum):
    """The four shape categories from paper Table 1."""

    SN = "SN"
    SW = "SW"
    LN = "LN"
    LW = "LW"

    @property
    def is_short(self) -> bool:
        return self.value[0] == "S"

    @property
    def is_narrow(self) -> bool:
        return self.value[1] == "N"


class EstimateQuality(str, Enum):
    """Well vs poorly estimated (paper Section 5.2)."""

    WELL = "well"
    POOR = "poor"


def categorize(
    job: Job,
    *,
    runtime_boundary: float = SHORT_LONG_BOUNDARY_SECONDS,
    width_boundary: int = NARROW_WIDE_BOUNDARY_PROCS,
) -> Category:
    """Classify a job into SN/SW/LN/LW by actual runtime and width."""
    short = job.runtime <= runtime_boundary
    narrow = job.procs <= width_boundary
    if short:
        return Category.SN if narrow else Category.SW
    return Category.LN if narrow else Category.LW


def estimate_quality(
    job: Job,
    *,
    max_factor: float = WELL_ESTIMATED_MAX_FACTOR,
) -> EstimateQuality:
    """Classify a job as well or poorly estimated."""
    if job.estimate <= max_factor * job.runtime:
        return EstimateQuality.WELL
    return EstimateQuality.POOR


def category_masks(
    runtimes: np.ndarray,
    procs: np.ndarray,
    *,
    runtime_boundary: float = SHORT_LONG_BOUNDARY_SECONDS,
    width_boundary: int = NARROW_WIDE_BOUNDARY_PROCS,
) -> dict[Category, np.ndarray]:
    """Vectorized :func:`categorize`: one boolean mask per shape category.

    Element ``i`` of the ``Category.SN`` mask is true iff
    ``categorize(job_i)`` is ``SN``, etc.  Masks are disjoint and cover
    every element.
    """
    short = np.asarray(runtimes) <= runtime_boundary
    narrow = np.asarray(procs) <= width_boundary
    return {
        Category.SN: short & narrow,
        Category.SW: short & ~narrow,
        Category.LN: ~short & narrow,
        Category.LW: ~short & ~narrow,
    }


def quality_masks(
    estimates: np.ndarray,
    runtimes: np.ndarray,
    *,
    max_factor: float = WELL_ESTIMATED_MAX_FACTOR,
) -> dict[EstimateQuality, np.ndarray]:
    """Vectorized :func:`estimate_quality`: well/poor masks over columns."""
    well = np.asarray(estimates) <= max_factor * np.asarray(runtimes)
    return {
        EstimateQuality.WELL: well,
        EstimateQuality.POOR: ~well,
    }


def category_counts(jobs) -> dict[Category, int]:
    """Count jobs per category (used by the Tables 2-3 experiment)."""
    counts = {category: 0 for category in Category}
    for job in jobs:
        counts[categorize(job)] += 1
    return counts

"""Per-run metric records and aggregation.

The simulator produces one :class:`CompletedJob` per job; :func:`summarize`
rolls a set of them into a :class:`RunMetrics` with the aggregates the paper
reports: average bounded slowdown, average turnaround time, and worst-case
turnaround time — overall, per shape category, and per estimate-quality
class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.metrics.categories import (
    Category,
    EstimateQuality,
    categorize,
    estimate_quality,
)
from repro.metrics.defs import bounded_slowdown, turnaround_time, wait_time
from repro.workload.job import Job

__all__ = ["CompletedJob", "MetricSummary", "RunMetrics", "summarize"]


@dataclass(frozen=True, slots=True)
class CompletedJob:
    """The scheduling outcome of a single job."""

    job: Job
    start_time: float
    finish_time: float

    def __post_init__(self) -> None:
        if self.start_time < self.job.submit_time - 1e-9:
            raise SimulationError(
                f"job {self.job.job_id} started at {self.start_time} before "
                f"its submission at {self.job.submit_time}"
            )
        expected_finish = self.start_time + self.job.effective_runtime
        if not math.isclose(self.finish_time, expected_finish, rel_tol=1e-9, abs_tol=1e-6):
            raise SimulationError(
                f"job {self.job.job_id} ran {self.finish_time - self.start_time}s, "
                f"expected {self.job.effective_runtime}s"
            )

    @property
    def wait(self) -> float:
        return wait_time(self.job.submit_time, self.start_time)

    @property
    def turnaround(self) -> float:
        return turnaround_time(self.job.submit_time, self.finish_time)

    @property
    def bounded_slowdown(self) -> float:
        return bounded_slowdown(self.job.submit_time, self.start_time, self.finish_time)

    @property
    def category(self) -> Category:
        return categorize(self.job)

    @property
    def estimate_quality(self) -> EstimateQuality:
        return estimate_quality(self.job)


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Aggregates over one group of completed jobs."""

    count: int
    mean_bounded_slowdown: float
    mean_turnaround: float
    mean_wait: float
    max_turnaround: float
    max_bounded_slowdown: float

    @classmethod
    def empty(cls) -> "MetricSummary":
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)

    @classmethod
    def of(cls, records: list[CompletedJob]) -> "MetricSummary":
        if not records:
            return cls.empty()
        slowdowns = [r.bounded_slowdown for r in records]
        turnarounds = [r.turnaround for r in records]
        waits = [r.wait for r in records]
        n = len(records)
        return cls(
            count=n,
            mean_bounded_slowdown=sum(slowdowns) / n,
            mean_turnaround=sum(turnarounds) / n,
            mean_wait=sum(waits) / n,
            max_turnaround=max(turnarounds),
            max_bounded_slowdown=max(slowdowns),
        )


@dataclass(frozen=True)
class RunMetrics:
    """Full metric breakdown of one simulation run."""

    overall: MetricSummary
    by_category: dict[Category, MetricSummary]
    by_estimate_quality: dict[EstimateQuality, MetricSummary]
    utilization: float
    makespan: float
    records: tuple[CompletedJob, ...] = field(repr=False)

    def category_summary(self, category: Category | str) -> MetricSummary:
        return self.by_category[Category(category)]

    def quality_summary(self, quality: EstimateQuality | str) -> MetricSummary:
        return self.by_estimate_quality[EstimateQuality(quality)]

    def record_for(self, job_id: int) -> CompletedJob:
        for record in self.records:
            if record.job.job_id == job_id:
                return record
        raise KeyError(f"no completed record for job {job_id}")


def trim_warmup(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    warmup_fraction: float = 0.1,
    cooldown_fraction: float = 0.0,
) -> list[CompletedJob]:
    """Drop the first/last fractions of records by submission order.

    Standard steady-state methodology: the simulated machine starts empty
    (early jobs see an unrealistically idle system) and drains at the end
    (late jobs see an emptying queue).  Trimming by *submission order*
    keeps the job population unbiased within the retained window.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if not 0.0 <= cooldown_fraction < 1.0:
        raise SimulationError(
            f"cooldown_fraction must be in [0, 1), got {cooldown_fraction}"
        )
    if warmup_fraction + cooldown_fraction >= 1.0:
        raise SimulationError("warmup + cooldown fractions must leave some jobs")
    ordered = sorted(records, key=lambda r: (r.job.submit_time, r.job.job_id))
    n = len(ordered)
    lo = int(n * warmup_fraction)
    hi = n - int(n * cooldown_fraction)
    return ordered[lo:hi]


def summarize(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    utilization: float = math.nan,
    makespan: float | None = None,
) -> RunMetrics:
    """Aggregate completed-job records into a :class:`RunMetrics`."""
    records = tuple(records)
    by_category: dict[Category, list[CompletedJob]] = {c: [] for c in Category}
    by_quality: dict[EstimateQuality, list[CompletedJob]] = {
        q: [] for q in EstimateQuality
    }
    for record in records:
        by_category[record.category].append(record)
        by_quality[record.estimate_quality].append(record)

    span = 0.0
    if records:
        span = max(r.finish_time for r in records) - min(
            r.job.submit_time for r in records
        )
    return RunMetrics(
        overall=MetricSummary.of(list(records)),
        by_category={c: MetricSummary.of(v) for c, v in by_category.items()},
        by_estimate_quality={q: MetricSummary.of(v) for q, v in by_quality.items()},
        utilization=utilization,
        makespan=makespan if makespan is not None else span,
        records=records,
    )

"""Per-run metric records and aggregation.

The simulator produces one :class:`CompletedJob` per job; :func:`summarize`
rolls a set of them into a :class:`RunMetrics` with the aggregates the paper
reports: average bounded slowdown, average turnaround time, and worst-case
turnaround time — overall, per shape category, and per estimate-quality
class.

Two implementations produce float-identical results:

* :func:`summarize_columns` (the default behind :func:`summarize`) pulls
  the record fields into numpy arrays once, computes every per-job metric
  and the category/quality masks with array operations, and aggregates
  each group with the same sequential summation the row path uses;
* :func:`summarize_rows` is the original record-at-a-time reference that
  the differential suite compares against; :func:`reference_summarize`
  forces it for a ``with`` block (the engines bind ``summarize`` at import
  time, so the toggle lives inside the dispatcher).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.metrics.categories import (
    Category,
    EstimateQuality,
    categorize,
    category_masks,
    estimate_quality,
    quality_masks,
)
from repro.metrics.defs import (
    BOUNDED_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
    turnaround_time,
    wait_time,
)
from repro.workload.job import Job

__all__ = [
    "CompletedJob",
    "MetricSummary",
    "RunMetrics",
    "summarize",
    "summarize_rows",
    "summarize_columns",
    "summarize_legacy",
    "reference_summarize",
]


@dataclass(frozen=True, slots=True)
class CompletedJob:
    """The scheduling outcome of a single job."""

    job: Job
    start_time: float
    finish_time: float

    def __post_init__(self) -> None:
        if self.start_time < self.job.submit_time - 1e-9:
            raise SimulationError(
                f"job {self.job.job_id} started at {self.start_time} before "
                f"its submission at {self.job.submit_time}"
            )
        expected_finish = self.start_time + self.job.effective_runtime
        if not math.isclose(self.finish_time, expected_finish, rel_tol=1e-9, abs_tol=1e-6):
            raise SimulationError(
                f"job {self.job.job_id} ran {self.finish_time - self.start_time}s, "
                f"expected {self.job.effective_runtime}s"
            )

    @classmethod
    def _trusted(
        cls,
        job: Job,
        start_time: float,
        finish_time: float,
        _new=object.__new__,
        _set_job=None,
        _set_start=None,
        _set_finish=None,
    ) -> "CompletedJob":
        """Engine-internal constructor, skipping ``__post_init__``.

        For records the simulator's event loop builds itself: the start
        time is the clock at allocation (>= the arrival batch, hence >=
        submission) and the finish time is the very value the engine
        pushed as ``start + effective_runtime``, so both checks hold by
        construction and re-running them per completion only taxes the
        hot loop.  Externally assembled records must use the validated
        constructor.  Writes go through the slot member descriptors
        (bound below, once the class exists) — same trick as
        ``Job._from_trusted_columns``: frozen only overrides
        ``__setattr__``, and the pre-bound ``__set__`` skips the
        per-call attribute-name lookup.
        """
        record = _new(cls)
        _set_job(record, job)
        _set_start(record, start_time)
        _set_finish(record, finish_time)
        return record

    @property
    def wait(self) -> float:
        return wait_time(self.job.submit_time, self.start_time)

    @property
    def turnaround(self) -> float:
        return turnaround_time(self.job.submit_time, self.finish_time)

    @property
    def bounded_slowdown(self) -> float:
        return bounded_slowdown(self.job.submit_time, self.start_time, self.finish_time)

    @property
    def category(self) -> Category:
        return categorize(self.job)

    @property
    def estimate_quality(self) -> EstimateQuality:
        return estimate_quality(self.job)


# The slot member descriptors only exist once the class object does, so
# ``_trusted``'s setter defaults are bound here rather than inline.
CompletedJob._trusted.__func__.__defaults__ = (
    object.__new__,
    CompletedJob.__dict__["job"].__set__,
    CompletedJob.__dict__["start_time"].__set__,
    CompletedJob.__dict__["finish_time"].__set__,
)


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Aggregates over one group of completed jobs."""

    count: int
    mean_bounded_slowdown: float
    mean_turnaround: float
    mean_wait: float
    max_turnaround: float
    max_bounded_slowdown: float

    @classmethod
    def empty(cls) -> "MetricSummary":
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)

    @classmethod
    def of(cls, records: list[CompletedJob]) -> "MetricSummary":
        slowdowns = [r.bounded_slowdown for r in records]
        turnarounds = [r.turnaround for r in records]
        waits = [r.wait for r in records]
        return cls.from_values(slowdowns, turnarounds, waits)

    @classmethod
    def from_values(
        cls,
        slowdowns: list[float],
        turnarounds: list[float],
        waits: list[float],
    ) -> "MetricSummary":
        """Aggregate pre-computed per-job metric values.

        This is the single aggregation point for both summarize paths, so
        each record's metric chain is computed once per run and then reused
        across the overall / per-category / per-quality groups.  Sums are
        sequential (Python ``sum``) in record order in both paths, keeping
        the means bit-identical between them.
        """
        if not slowdowns:
            return cls.empty()
        n = len(slowdowns)
        return cls(
            count=n,
            mean_bounded_slowdown=sum(slowdowns) / n,
            mean_turnaround=sum(turnarounds) / n,
            mean_wait=sum(waits) / n,
            max_turnaround=max(turnarounds),
            max_bounded_slowdown=max(slowdowns),
        )


@dataclass(frozen=True)
class RunMetrics:
    """Full metric breakdown of one simulation run."""

    overall: MetricSummary
    by_category: dict[Category, MetricSummary]
    by_estimate_quality: dict[EstimateQuality, MetricSummary]
    utilization: float
    makespan: float
    records: tuple[CompletedJob, ...] = field(repr=False)

    def category_summary(self, category: Category | str) -> MetricSummary:
        return self.by_category[Category(category)]

    def quality_summary(self, quality: EstimateQuality | str) -> MetricSummary:
        return self.by_estimate_quality[EstimateQuality(quality)]

    def record_for(self, job_id: int) -> CompletedJob:
        # Lazy job-id index: the first lookup builds a dict so sweeps that
        # probe many jobs pay O(n) once instead of an O(n) scan per call.
        # First-match-wins, like the scan this replaces.
        index = self.__dict__.get("_job_index")
        if index is None:
            index = {}
            for record in self.records:
                index.setdefault(record.job.job_id, record)
            object.__setattr__(self, "_job_index", index)
        try:
            return index[job_id]
        except KeyError:
            raise KeyError(f"no completed record for job {job_id}") from None


def trim_warmup(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    warmup_fraction: float = 0.1,
    cooldown_fraction: float = 0.0,
) -> list[CompletedJob]:
    """Drop the first/last fractions of records by submission order.

    Standard steady-state methodology: the simulated machine starts empty
    (early jobs see an unrealistically idle system) and drains at the end
    (late jobs see an emptying queue).  Trimming by *submission order*
    keeps the job population unbiased within the retained window.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    if not 0.0 <= cooldown_fraction < 1.0:
        raise SimulationError(
            f"cooldown_fraction must be in [0, 1), got {cooldown_fraction}"
        )
    if warmup_fraction + cooldown_fraction >= 1.0:
        raise SimulationError("warmup + cooldown fractions must leave some jobs")
    ordered = sorted(records, key=lambda r: (r.job.submit_time, r.job.job_id))
    n = len(ordered)
    lo = int(n * warmup_fraction)
    hi = n - int(n * cooldown_fraction)
    return ordered[lo:hi]


def summarize_rows(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    utilization: float = math.nan,
    makespan: float | None = None,
) -> RunMetrics:
    """Record-at-a-time :func:`summarize` (the reference implementation).

    Each record's metric chain (wait / turnaround / bounded slowdown) is
    evaluated exactly once, then the values are regrouped for the overall,
    per-category and per-quality summaries.
    """
    records = tuple(records)
    slowdowns = [r.bounded_slowdown for r in records]
    turnarounds = [r.turnaround for r in records]
    waits = [r.wait for r in records]
    by_category: dict[Category, list[int]] = {c: [] for c in Category}
    by_quality: dict[EstimateQuality, list[int]] = {q: [] for q in EstimateQuality}
    for i, record in enumerate(records):
        by_category[record.category].append(i)
        by_quality[record.estimate_quality].append(i)

    def _group(indices: list[int]) -> MetricSummary:
        return MetricSummary.from_values(
            [slowdowns[i] for i in indices],
            [turnarounds[i] for i in indices],
            [waits[i] for i in indices],
        )

    span = 0.0
    if records:
        span = max(r.finish_time for r in records) - min(
            r.job.submit_time for r in records
        )
    return RunMetrics(
        overall=MetricSummary.from_values(slowdowns, turnarounds, waits),
        by_category={c: _group(v) for c, v in by_category.items()},
        by_estimate_quality={q: _group(v) for q, v in by_quality.items()},
        utilization=utilization,
        makespan=makespan if makespan is not None else span,
        records=records,
    )


def summarize_columns(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    utilization: float = math.nan,
    makespan: float | None = None,
) -> RunMetrics:
    """Vectorized :func:`summarize`: one numpy pass over the record fields.

    Float-identical to :func:`summarize_rows`: the per-job metrics are the
    same elementwise IEEE operations, the category/quality masks preserve
    record order, and group aggregation goes through the same sequential
    ``sum`` (numpy's pairwise ``np.sum`` would round differently).
    """
    records = tuple(records)
    n = len(records)
    if n == 0:
        return summarize_rows(
            records, utilization=utilization, makespan=makespan
        )
    # One pass over the records instead of six: each column used to be
    # its own ``np.fromiter`` over a generator, which re-resumed a
    # generator frame and re-read ``r.job`` per element per column.
    # The values are the same Python floats either way, so the arrays
    # (and everything derived from them) stay bit-identical.
    submit_l: list[float] = []
    start_l: list[float] = []
    finish_l: list[float] = []
    runtime_l: list[float] = []
    estimate_l: list[float] = []
    procs_l: list[int] = []
    a_submit = submit_l.append
    a_start = start_l.append
    a_finish = finish_l.append
    a_runtime = runtime_l.append
    a_estimate = estimate_l.append
    a_procs = procs_l.append
    for r in records:
        job = r.job
        a_submit(job.submit_time)
        a_start(r.start_time)
        a_finish(r.finish_time)
        a_runtime(job.runtime)
        a_estimate(job.estimate)
        a_procs(job.procs)
    submit = np.array(submit_l, np.float64)
    start = np.array(start_l, np.float64)
    finish = np.array(finish_l, np.float64)
    runtime = np.array(runtime_l, np.float64)
    estimate = np.array(estimate_l, np.float64)
    procs = np.array(procs_l, np.int64)

    waits = np.maximum(start - submit, 0.0)
    turnarounds = np.maximum(finish - submit, 0.0)
    elapsed = np.maximum(finish - start, 0.0)
    denom = np.maximum(elapsed, BOUNDED_SLOWDOWN_THRESHOLD)
    slowdowns = (waits + denom) / denom

    def _group(mask: np.ndarray) -> MetricSummary:
        return MetricSummary.from_values(
            slowdowns[mask].tolist(),
            turnarounds[mask].tolist(),
            waits[mask].tolist(),
        )

    span = float(finish.max()) - float(submit.min())
    return RunMetrics(
        overall=MetricSummary.from_values(
            slowdowns.tolist(), turnarounds.tolist(), waits.tolist()
        ),
        by_category={
            c: _group(mask) for c, mask in category_masks(runtime, procs).items()
        },
        by_estimate_quality={
            q: _group(mask) for q, mask in quality_masks(estimate, runtime).items()
        },
        utilization=utilization,
        makespan=makespan if makespan is not None else span,
        records=records,
    )


def summarize_legacy(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    utilization: float = math.nan,
    makespan: float | None = None,
) -> RunMetrics:
    """The pre-columnar ``summarize``, kept verbatim as a benchmark baseline.

    Groups the records and calls :meth:`MetricSummary.of` once per group,
    so every record's bounded slowdown, turnaround, and wait properties
    are recomputed in each of the three groupings it belongs to (overall,
    shape category, estimate quality).  :func:`summarize_rows` is this
    algorithm with the recomputation fixed; the differential suite pins
    all three engines to identical output, and ``benchmarks/bench_sweep.py``
    uses this one so its row leg carries the faithful pre-PR aggregation
    cost rather than silently borrowing the fix.
    """
    records = tuple(records)
    by_category: dict[Category, list[CompletedJob]] = {c: [] for c in Category}
    by_quality: dict[EstimateQuality, list[CompletedJob]] = {
        q: [] for q in EstimateQuality
    }
    for record in records:
        by_category[record.category].append(record)
        by_quality[record.estimate_quality].append(record)

    span = 0.0
    if records:
        span = max(r.finish_time for r in records) - min(
            r.job.submit_time for r in records
        )
    return RunMetrics(
        overall=MetricSummary.of(list(records)),
        by_category={c: MetricSummary.of(v) for c, v in by_category.items()},
        by_estimate_quality={q: MetricSummary.of(v) for q, v in by_quality.items()},
        utilization=utilization,
        makespan=makespan if makespan is not None else span,
        records=records,
    )


_SUMMARIZE_ENGINE = "columnar"

_REFERENCE_ENGINES = ("rows", "legacy")


def summarize(
    records: list[CompletedJob] | tuple[CompletedJob, ...],
    *,
    utilization: float = math.nan,
    makespan: float | None = None,
) -> RunMetrics:
    """Aggregate completed-job records into a :class:`RunMetrics`.

    Dispatches to the vectorized :func:`summarize_columns` unless
    :func:`reference_summarize` is active; all paths are float-identical.
    """
    if _SUMMARIZE_ENGINE == "rows":
        return summarize_rows(records, utilization=utilization, makespan=makespan)
    if _SUMMARIZE_ENGINE == "legacy":
        return summarize_legacy(records, utilization=utilization, makespan=makespan)
    return summarize_columns(records, utilization=utilization, makespan=makespan)


@contextmanager
def reference_summarize(engine: str = "rows"):
    """Force a reference ``summarize`` implementation within a block.

    ``engine`` is ``"rows"`` (the record-at-a-time reference) or
    ``"legacy"`` (the verbatim pre-columnar implementation,
    :func:`summarize_legacy`).  The simulation engines bind ``summarize``
    once at import, so the benchmark's row leg and the differential tests
    switch paths with this toggle instead of monkeypatching every engine
    module.
    """
    if engine not in _REFERENCE_ENGINES:
        raise ValueError(
            f"unknown reference summarize engine {engine!r}; "
            f"expected one of {_REFERENCE_ENGINES}"
        )
    global _SUMMARIZE_ENGINE
    previous = _SUMMARIZE_ENGINE
    _SUMMARIZE_ENGINE = engine
    try:
        yield
    finally:
        _SUMMARIZE_ENGINE = previous

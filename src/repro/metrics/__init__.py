"""Metrics: per-job scheduling outcomes, categorization, and aggregation."""

from repro.metrics.defs import (
    BOUNDED_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
    slowdown,
    turnaround_time,
    wait_time,
)
from repro.metrics.categories import (
    Category,
    EstimateQuality,
    categorize,
    estimate_quality,
    category_masks,
    quality_masks,
    SHORT_LONG_BOUNDARY_SECONDS,
    NARROW_WIDE_BOUNDARY_PROCS,
    WELL_ESTIMATED_MAX_FACTOR,
)
from repro.metrics.collector import (
    CompletedJob,
    RunMetrics,
    reference_summarize,
    summarize,
    summarize_columns,
    summarize_legacy,
    summarize_rows,
)
from repro.metrics.streaming import (
    GroupAccumulator,
    QuantileReservoir,
    StreamingMetrics,
)

__all__ = [
    "BOUNDED_SLOWDOWN_THRESHOLD",
    "bounded_slowdown",
    "slowdown",
    "turnaround_time",
    "wait_time",
    "Category",
    "EstimateQuality",
    "categorize",
    "estimate_quality",
    "SHORT_LONG_BOUNDARY_SECONDS",
    "NARROW_WIDE_BOUNDARY_PROCS",
    "WELL_ESTIMATED_MAX_FACTOR",
    "category_masks",
    "quality_masks",
    "CompletedJob",
    "RunMetrics",
    "summarize",
    "summarize_rows",
    "summarize_columns",
    "summarize_legacy",
    "reference_summarize",
    "StreamingMetrics",
    "QuantileReservoir",
    "GroupAccumulator",
]

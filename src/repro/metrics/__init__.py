"""Metrics: per-job scheduling outcomes, categorization, and aggregation."""

from repro.metrics.defs import (
    BOUNDED_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
    slowdown,
    turnaround_time,
    wait_time,
)
from repro.metrics.categories import (
    Category,
    EstimateQuality,
    categorize,
    estimate_quality,
    SHORT_LONG_BOUNDARY_SECONDS,
    NARROW_WIDE_BOUNDARY_PROCS,
    WELL_ESTIMATED_MAX_FACTOR,
)
from repro.metrics.collector import CompletedJob, RunMetrics, summarize

__all__ = [
    "BOUNDED_SLOWDOWN_THRESHOLD",
    "bounded_slowdown",
    "slowdown",
    "turnaround_time",
    "wait_time",
    "Category",
    "EstimateQuality",
    "categorize",
    "estimate_quality",
    "SHORT_LONG_BOUNDARY_SECONDS",
    "NARROW_WIDE_BOUNDARY_PROCS",
    "WELL_ESTIMATED_MAX_FACTOR",
    "CompletedJob",
    "RunMetrics",
    "summarize",
]

"""Bounded-memory streaming metrics for long-lived simulations.

A batch run keeps every :class:`~repro.metrics.collector.CompletedJob`
and aggregates at the end (:func:`~repro.metrics.collector.summarize`).
A *live* session — the serve layer's authoritative simulator, fed jobs
forever — cannot: per-job rows grow without bound.
:class:`StreamingMetrics` is the sink the engine feeds instead
(``Simulator(metrics_sink=...)``): each completion is folded into O(1)
accumulators and dropped.

Float identity with the batch path is by construction, not tolerance:
``sum()`` over a list is left-to-right sequential addition from ``0``,
so a running ``acc += x`` in observation order produces the bit-same
IEEE double, and the engine observes completions in exactly the order
the batch path stores them.  Per-job metric values come from the same
:class:`~repro.metrics.collector.CompletedJob` properties, and group
membership uses the same :func:`~repro.metrics.categories.categorize` /
:func:`~repro.metrics.categories.estimate_quality` functions.  The
differential suite (``tests/serve/test_streaming_metrics.py``) pins the
resulting :class:`~repro.metrics.collector.RunMetrics` equal to the
batch path for every scheduler x priority.

Two modes:

* ``exact`` — additionally keeps every record, so
  :meth:`StreamingMetrics.run_metrics` rebuilds a full
  :class:`~repro.metrics.collector.RunMetrics` (records included)
  byte-identical to a batch run.  The differential-testing fallback.
* ``bounded`` — O(1) memory in job count: aggregates only, plus a
  fixed-capacity deterministic :class:`QuantileReservoir` per tracked
  distribution (wait and bounded slowdown) for percentile estimates the
  exact aggregates cannot provide, plus any explicitly *watched*
  records (:meth:`StreamingMetrics.watch` — how a what-if branch keeps
  the one hypothetical job it was forked to predict).
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro.errors import SimulationError
from repro.metrics.categories import (
    Category,
    EstimateQuality,
    categorize,
    estimate_quality,
)
from repro.metrics.collector import (
    CompletedJob,
    MetricSummary,
    RunMetrics,
    summarize,
)

__all__ = ["StreamingMetrics", "QuantileReservoir", "GroupAccumulator"]

#: Default reservoir capacity: large enough for stable p99 estimates,
#: small enough that a session's metric state stays a few hundred KB.
DEFAULT_RESERVOIR_CAPACITY = 4096


class QuantileReservoir:
    """Fixed-capacity uniform sample of a stream (Vitter's algorithm R).

    Deterministic: the replacement RNG is seeded, and :meth:`fork`
    copies its state, so forked branches and resumed snapshots observe
    reproducible reservoirs.  Quantiles are nearest-rank over the
    current sample — exact until the stream exceeds ``capacity``, an
    unbiased estimate after.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._sample: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._sample)

    @property
    def seen(self) -> int:
        """Total values observed (>= the sample size once saturated)."""
        return self._seen

    def observe(self, value: float) -> None:
        """Fold one value into the reservoir."""
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._sample[slot] = value

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile of the sample (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            return math.nan
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def fork(self) -> "QuantileReservoir":
        """Independent copy, RNG state included."""
        clone = QuantileReservoir(self.capacity)
        clone._sample = list(self._sample)
        clone._seen = self._seen
        clone._rng.setstate(self._rng.getstate())
        return clone


class GroupAccumulator:
    """O(1) running aggregates over one group of completed jobs.

    Accumulates in observation order with ``+=``, which is bit-identical
    to the batch path's sequential ``sum`` over the same values.
    """

    __slots__ = (
        "count",
        "sum_slowdown",
        "sum_turnaround",
        "sum_wait",
        "max_turnaround",
        "max_slowdown",
    )

    def __init__(self) -> None:
        self.count = 0
        self.sum_slowdown = 0.0
        self.sum_turnaround = 0.0
        self.sum_wait = 0.0
        self.max_turnaround = -math.inf
        self.max_slowdown = -math.inf

    def observe(self, slowdown: float, turnaround: float, wait: float) -> None:
        """Fold one job's metric values in."""
        self.count += 1
        self.sum_slowdown += slowdown
        self.sum_turnaround += turnaround
        self.sum_wait += wait
        if turnaround > self.max_turnaround:
            self.max_turnaround = turnaround
        if slowdown > self.max_slowdown:
            self.max_slowdown = slowdown

    def summary(self) -> MetricSummary:
        """The group's :class:`MetricSummary` (empty sentinel at count 0)."""
        if self.count == 0:
            return MetricSummary.empty()
        return MetricSummary(
            count=self.count,
            mean_bounded_slowdown=self.sum_slowdown / self.count,
            mean_turnaround=self.sum_turnaround / self.count,
            mean_wait=self.sum_wait / self.count,
            max_turnaround=self.max_turnaround,
            max_bounded_slowdown=self.max_slowdown,
        )

    def fork(self) -> "GroupAccumulator":
        clone = GroupAccumulator()
        for name in self.__slots__:
            setattr(clone, name, getattr(self, name))
        return clone


class StreamingMetrics:
    """Online :class:`RunMetrics` accumulation with bounded memory.

    The engine-facing sink protocol: :meth:`observe` per completion,
    :meth:`fork` on snapshot/resume, :attr:`watched_records`, and
    :meth:`run_metrics` at finalize.  See the module docstring for the
    ``exact`` / ``bounded`` modes and the float-identity argument.
    """

    MODES = ("exact", "bounded")

    def __init__(
        self,
        mode: str = "bounded",
        *,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        reservoir_seed: int = 0,
        watch_ids: Iterable[int] = (),
    ) -> None:
        if mode not in self.MODES:
            raise SimulationError(
                f"unknown StreamingMetrics mode {mode!r}; expected one of {self.MODES}"
            )
        self.mode = mode
        self._overall = GroupAccumulator()
        self._by_category = {c: GroupAccumulator() for c in Category}
        self._by_quality = {q: GroupAccumulator() for q in EstimateQuality}
        self._wait_reservoir = QuantileReservoir(reservoir_capacity, reservoir_seed)
        self._slowdown_reservoir = QuantileReservoir(
            reservoir_capacity, reservoir_seed + 1
        )
        self._watch_ids: set[int] = set(watch_ids)
        self._watched: dict[int, CompletedJob] = {}
        self._records: list[CompletedJob] = []  # exact mode only
        self._min_submit = math.inf
        self._max_finish = -math.inf

    # -- sink protocol --------------------------------------------------------

    def observe(self, record: CompletedJob) -> None:
        """Fold one completion into the aggregates (and maybe retain it)."""
        slowdown = record.bounded_slowdown
        turnaround = record.turnaround
        wait = record.wait
        self._overall.observe(slowdown, turnaround, wait)
        self._by_category[categorize(record.job)].observe(slowdown, turnaround, wait)
        self._by_quality[estimate_quality(record.job)].observe(
            slowdown, turnaround, wait
        )
        self._wait_reservoir.observe(wait)
        self._slowdown_reservoir.observe(slowdown)
        if record.job.submit_time < self._min_submit:
            self._min_submit = record.job.submit_time
        if record.finish_time > self._max_finish:
            self._max_finish = record.finish_time
        if self.mode == "exact":
            self._records.append(record)
        if record.job.job_id in self._watch_ids:
            self._watched[record.job.job_id] = record

    def fork(self) -> "StreamingMetrics":
        """Independent copy for a snapshot or a forked branch."""
        clone = StreamingMetrics(self.mode)
        clone._overall = self._overall.fork()
        clone._by_category = {c: a.fork() for c, a in self._by_category.items()}
        clone._by_quality = {q: a.fork() for q, a in self._by_quality.items()}
        clone._wait_reservoir = self._wait_reservoir.fork()
        clone._slowdown_reservoir = self._slowdown_reservoir.fork()
        clone._watch_ids = set(self._watch_ids)
        clone._watched = dict(self._watched)
        clone._records = list(self._records)
        clone._min_submit = self._min_submit
        clone._max_finish = self._max_finish
        return clone

    @property
    def watched_records(self) -> tuple[CompletedJob, ...]:
        """Retained records: all of them in exact mode, watched in bounded."""
        if self.mode == "exact":
            return tuple(self._records)
        return tuple(self._watched.values())

    def run_metrics(
        self, *, utilization: float = math.nan, makespan: float | None = None
    ) -> RunMetrics:
        """Materialize a :class:`RunMetrics` from the accumulated state.

        Exact mode routes the retained records through the batch
        :func:`~repro.metrics.collector.summarize`, so the result is
        byte-identical to a batch run.  Bounded mode builds the same
        aggregates from the running sums (bit-identical floats, see the
        module docstring) with only the watched records attached.
        """
        if self.mode == "exact":
            return summarize(
                self._records, utilization=utilization, makespan=makespan
            )
        return RunMetrics(
            overall=self._overall.summary(),
            by_category={c: a.summary() for c, a in self._by_category.items()},
            by_estimate_quality={
                q: a.summary() for q, a in self._by_quality.items()
            },
            utilization=utilization,
            makespan=makespan if makespan is not None else self.makespan,
            records=self.watched_records,
        )

    # -- observation-side API -------------------------------------------------

    def watch(self, job_id: int) -> None:
        """Retain the record of ``job_id`` when it completes (bounded mode's
        escape hatch for the handful of jobs a query is actually about)."""
        self._watch_ids.add(job_id)

    def watched_record(self, job_id: int) -> CompletedJob | None:
        """The retained record for a watched job, or None if not finished."""
        if self.mode == "exact":
            for record in self._records:
                if record.job.job_id == job_id:
                    return record
            return None
        return self._watched.get(job_id)

    @property
    def count(self) -> int:
        """Jobs observed so far."""
        return self._overall.count

    @property
    def makespan(self) -> float:
        """Span from earliest observed submission to latest finish."""
        if self._overall.count == 0:
            return 0.0
        return self._max_finish - self._min_submit

    @property
    def records_held(self) -> int:
        """Per-job records currently retained — the O(1)-memory witness.

        Bounded mode holds only watched records (plus the fixed-capacity
        reservoirs, which are value samples, not records), independent of
        how many jobs streamed through.
        """
        if self.mode == "exact":
            return len(self._records)
        return len(self._watched)

    def overall_summary(self) -> MetricSummary:
        """Running overall aggregates without materializing a RunMetrics."""
        return self._overall.summary()

    def wait_quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of job wait times."""
        return self._wait_reservoir.quantile(q)

    def slowdown_quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of bounded slowdowns."""
        return self._slowdown_reservoir.quantile(q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamingMetrics {self.mode} count={self.count} "
            f"records_held={self.records_held}>"
        )

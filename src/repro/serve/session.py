"""Live scheduling sessions: one authoritative simulator, forked queries.

A :class:`Session` is the serve layer's core object — the paper's
offline counterfactuals turned into a long-running service.  It holds
one *live* :class:`~repro.sim.engine.Simulator` per scheduling policy
(a primary plus optional alternatives, all fed the identical arrival
stream), accepts streaming job submissions, advances simulated time on
demand, and answers what-if questions by **forking** the live state:
every query takes a :meth:`~repro.sim.engine.Simulator.snapshot` of the
paused simulator, plays the branch forward in isolation, and leaves the
authoritative state untouched.  Forks are cheap (PR 5's checkpoint
machinery), so many queries can run against one state — concurrently,
via :class:`repro.serve.async_api.AsyncSession` or the HTTP layer.

The state machine: the live simulators are always paused at a *batch
boundary* at watermark ``now`` (:meth:`Session.clock`).  Mutations —
:meth:`Session.submit` buffering future arrivals,
:meth:`Session.advance` moving ``now`` forward — keep that invariant:
submissions into the simulated past and non-monotone advances raise
:class:`~repro.errors.SimulationError` immediately (the engine enforces
the same invariants independently, so drift is structurally impossible
rather than merely discouraged).

Queries are answered by a :class:`SessionBranch` — an immutable fork of
(snapshot, submitted jobs) that is pure with respect to the session, so
a caller may take a branch under a lock and drain it outside:

* :meth:`SessionBranch.what_if` — append a hypothetical job (or none),
  drain the branch to completion, and report when every pending job
  would start/finish, with full branch metrics;
* :meth:`SessionBranch.forecast` — advance the branch a horizon into
  the future without draining and report the queue/machine state there.

Metrics modes: ``"bounded"`` (default; the live simulators feed a
:class:`~repro.metrics.streaming.StreamingMetrics` sink, holding O(1)
metric state no matter how many jobs stream through) and ``"exact"``
(full per-job records retained, byte-identical to batch runs — the
differential-testing fallback).  In both modes a branch's what-if
answer is byte-identical to an independent simulation of the same
arrival history (pinned by
``tests/properties/test_prop_serve_equivalence.py``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.metrics.collector import CompletedJob, MetricSummary, RunMetrics
from repro.metrics.streaming import StreamingMetrics
from repro.sched.base import Scheduler
from repro.sim.engine import SimulationSnapshot, Simulator
from repro.workload.job import Job, Workload
from repro.workload.table import JobTable

__all__ = [
    "Session",
    "SessionBranch",
    "SessionSnapshot",
    "SessionStats",
    "WhatIfReport",
    "QueueForecast",
    "JobForecast",
    "RunningJob",
]

#: Session job ids must stay below the engine's advance-reservation
#: blocker base.
_MAX_JOB_ID = 10**12 - 1


@dataclass(frozen=True)
class JobForecast:
    """Predicted outcome of one pending job in a drained branch."""

    job_id: int
    submit_time: float
    start_time: float
    finish_time: float

    @property
    def wait(self) -> float:
        return max(self.start_time - self.submit_time, 0.0)


@dataclass(frozen=True)
class RunningJob:
    """One job occupying processors at a forecast horizon."""

    job_id: int
    procs: int
    start_time: float
    estimated_finish: float


@dataclass(frozen=True)
class WhatIfReport:
    """Answer to "what happens to my queue (plus maybe this job)?".

    Produced by draining a forked branch to completion; the live session
    is untouched.  ``target`` is the hypothetical job's forecast (None
    when the query was about the existing queue only), ``pending`` maps
    every job that had not finished at fork time to its predicted
    outcome, and ``metrics`` is the branch's full end-of-run metrics —
    byte-identical to an independent simulation of the same history.
    """

    policy: str
    asked_at: float
    target: JobForecast | None
    pending: tuple[JobForecast, ...]
    drained_at: float
    metrics: RunMetrics = field(repr=False)

    def forecast_for(self, job_id: int) -> JobForecast:
        """The prediction for one pending job id."""
        if self.target is not None and self.target.job_id == job_id:
            return self.target
        for prediction in self.pending:
            if prediction.job_id == job_id:
                return prediction
        raise KeyError(f"no forecast for job {job_id}")


@dataclass(frozen=True)
class QueueForecast:
    """The branch's queue/machine state a horizon into the future."""

    policy: str
    asked_at: float
    horizon: float
    at_time: float
    running: tuple[RunningJob, ...]
    queued_ids: tuple[int, ...]
    free_procs: int
    completed_in_horizon: int
    started: tuple[JobForecast, ...]
    utilization: float


@dataclass(frozen=True)
class SessionStats:
    """A point-in-time health/metrics card for the live session."""

    name: str
    policy: str
    policies: tuple[str, ...]
    clock: float
    total_procs: int
    free_procs: int
    submitted: int
    completed: int
    running: int
    queued: int
    utilization: float
    overall: MetricSummary
    wait_p50: float
    wait_p99: float
    metrics_mode: str
    records_held: int


@dataclass(frozen=True)
class SessionSnapshot:
    """A full, independent copy of a session's state.

    Taken by :meth:`Session.snapshot`; turned back into a live session
    by :meth:`Session.restore` (or :meth:`Session.fork`, the one-step
    combination).  Every embedded simulator snapshot is an independent
    fork, so the snapshot stays valid while the originating session runs
    on — the session-level analogue of
    :class:`~repro.sim.engine.SimulationSnapshot`.
    """

    name: str
    total_procs: int
    clock: float
    jobs: tuple[Job, ...]
    metrics_mode: str
    primary: str
    sim_snapshots: dict[str, SimulationSnapshot]
    next_id: int


class SessionBranch:
    """An immutable fork of a session, ready to answer one query.

    Constructed by :meth:`Session.branch` under whatever lock the caller
    uses; the expensive part — draining or advancing the branch — then
    runs without touching the session, which is what lets the async and
    HTTP layers multiplex many in-flight queries over one state.
    """

    def __init__(
        self,
        *,
        policy: str,
        snapshot: SimulationSnapshot,
        jobs: tuple[Job, ...],
        total_procs: int,
        now: float,
        name: str,
        free_id: int,
    ) -> None:
        self.policy = policy
        self._snapshot = snapshot
        self._jobs = jobs
        self._total_procs = total_procs
        self._now = now
        self._name = name
        self._free_id = free_id

    # -- internals ------------------------------------------------------------

    def _pending_ids(self, extra: tuple[Job, ...] = ()) -> list[int]:
        """Ids of jobs not yet finished at fork time (queued, running,
        undelivered) plus any hypothetical extras."""
        snap = self._snapshot
        ids = [job.job_id for job in snap.scheduler.queued_jobs]
        ids += [job.job_id for job, _ in snap.scheduler.running_jobs]
        ids += [job.job_id for job in self._jobs[snap.delivered :]]
        ids += [job.job_id for job in extra]
        return ids

    def _resume(self, workload: Workload, watch_ids: list[int]) -> Simulator:
        snap = self._snapshot
        if snap.metrics_sink is not None:
            sink = snap.metrics_sink.fork()
            for job_id in watch_ids:
                sink.watch(job_id)
            return Simulator.resume(snap, workload, metrics_sink=sink)
        return Simulator.resume(snap, workload)

    def _record_for(self, sim: Simulator, metrics: RunMetrics | None, job_id: int):
        if sim.metrics_sink is not None:
            return sim.metrics_sink.watched_record(job_id)
        source = metrics.records if metrics is not None else sim.completed_records
        for record in source:
            if record.job.job_id == job_id:
                return record
        return None

    @staticmethod
    def _forecast(record: CompletedJob) -> JobForecast:
        return JobForecast(
            job_id=record.job.job_id,
            submit_time=record.job.submit_time,
            start_time=record.start_time,
            finish_time=record.finish_time,
        )

    # -- queries --------------------------------------------------------------

    def what_if(self, job: Job | None = None) -> WhatIfReport:
        """Drain the branch (plus an optional hypothetical job) and report.

        The hypothetical job, if any, must be submitted at or after the
        branch's fork time; its id defaults to the session's next free
        one and must not collide with an existing job.
        """
        extra: tuple[Job, ...] = ()
        if job is not None:
            if job.submit_time < self._now:
                raise SimulationError(
                    f"what-if job submitted at t={job.submit_time}, in the "
                    f"simulated past (session time is {self._now})"
                )
            taken = {existing.job_id for existing in self._jobs}
            if job.job_id in taken:
                raise SimulationError(
                    f"what-if job id {job.job_id} collides with a submitted job"
                )
            extra = (job,)
        jobs = self._jobs + extra
        workload = Workload.from_jobs(jobs, self._total_procs, name=self._name)
        watch_ids = self._pending_ids(extra)
        sim = self._resume(workload, watch_ids)
        result = sim.drain()
        pending = []
        for job_id in watch_ids:
            if job is not None and job_id == job.job_id:
                continue
            record = self._record_for(sim, result.metrics, job_id)
            if record is not None:
                pending.append(self._forecast(record))
        target = None
        if job is not None:
            record = self._record_for(sim, result.metrics, job.job_id)
            if record is None:
                raise SimulationError(
                    f"what-if job {job.job_id} never completed in the branch"
                )
            target = self._forecast(record)
        pending.sort(key=lambda p: (p.start_time, p.job_id))
        return WhatIfReport(
            policy=self.policy,
            asked_at=self._now,
            target=target,
            pending=tuple(pending),
            drained_at=sim.clock,
            metrics=result.metrics,
        )

    def forecast(self, horizon: float) -> QueueForecast:
        """Advance the branch ``horizon`` seconds and report the state there."""
        if not math.isfinite(horizon) or horizon < 0:
            raise SimulationError(
                f"forecast horizon must be finite and >= 0, got {horizon}"
            )
        at_time = self._now + horizon
        workload = Workload.from_jobs(self._jobs, self._total_procs, name=self._name)
        watch_ids = self._pending_ids()
        sim = self._resume(workload, watch_ids)
        sim.run_until_time(at_time)
        running = tuple(
            RunningJob(
                job_id=job.job_id,
                procs=job.procs,
                start_time=start,
                estimated_finish=start + job.estimate,
            )
            for job, start in sorted(
                sim.scheduler.running_jobs, key=lambda pair: pair[0].job_id
            )
        )
        started = [
            JobForecast(r.job_id, math.nan, r.start_time, math.nan)
            for r in running
            if r.start_time >= self._now
        ]
        for job_id in watch_ids:
            record = self._record_for(sim, None, job_id)
            if record is not None and record.start_time >= self._now:
                started.append(self._forecast(record))
        started.sort(key=lambda p: (p.start_time, p.job_id))
        queued = tuple(
            sorted(job.job_id for job in sim.scheduler.queued_jobs)
        )
        return QueueForecast(
            policy=self.policy,
            asked_at=self._now,
            horizon=horizon,
            at_time=at_time,
            running=running,
            queued_ids=queued,
            free_procs=sim.machine.free_procs,
            completed_in_horizon=sim.completed_count - self._snapshot.completed_count,
            started=tuple(started),
            utilization=sim.machine.utilization(),
        )

    def free_job_id(self) -> int:
        """A job id unused by any submitted job (for hypothetical jobs)."""
        return self._free_id


class Session:
    """A live scheduler-as-a-service session.

    Parameters:

    * ``max_procs`` — machine size the session schedules onto.
    * ``scheduler`` / ``priority`` — the *primary* policy: a registry
      kind (``easy``, ``cons``, ...; see
      :func:`repro.experiments.runner.make_scheduler`) plus priority
      name, or a ready :class:`~repro.sched.base.Scheduler` instance.
    * ``alternatives`` — extra policies fed the same arrival stream,
      each a kind string (inherits ``priority``), a ``"kind:PRIORITY"``
      string, or a :class:`~repro.sched.base.Scheduler` instance.
      What-if queries can target any of them: *"when would this start
      under cons vs EASY?"* is ``what_if(..., policy="cons")`` against a
      session with ``alternatives=("cons",)``.
    * ``metrics`` — ``"bounded"`` (default, O(1) metric memory) or
      ``"exact"`` (full records; see module docstring).

    Not thread-safe by itself; the async and HTTP layers serialize
    mutations and fork branches under a lock.
    """

    def __init__(
        self,
        max_procs: int,
        *,
        scheduler: str | Scheduler = "easy",
        priority: str = "FCFS",
        alternatives: tuple = (),
        metrics: str = "bounded",
        name: str = "live",
        scheduler_options: dict | None = None,
    ) -> None:
        if max_procs <= 0:
            raise SimulationError(f"max_procs must be > 0, got {max_procs}")
        if metrics not in StreamingMetrics.MODES:
            raise SimulationError(
                f"unknown metrics mode {metrics!r}; expected one of "
                f"{StreamingMetrics.MODES}"
            )
        self.name = name
        self.total_procs = max_procs
        self.metrics_mode = metrics
        self._default_priority = priority
        self._options = dict(scheduler_options or {})
        self._jobs: list[Job] = []
        self._dirty = False
        self._now = 0.0
        self._next_id = 1
        self._sims: dict[str, Simulator] = {}
        primary_name = self._add_policy(scheduler, priority)
        self.primary = primary_name
        for spec in alternatives:
            self._add_policy(spec, priority)

    # -- policy management ----------------------------------------------------

    def _add_policy(self, spec, priority: str) -> str:
        from repro.experiments.runner import make_scheduler

        if isinstance(spec, Scheduler):
            name, instance = spec.describe(), spec
        elif isinstance(spec, str):
            if ":" in spec:
                kind, _, policy_priority = spec.partition(":")
            else:
                kind, policy_priority = spec, priority
            name = spec
            instance = make_scheduler(kind, policy_priority, **self._options)
        else:
            raise SimulationError(
                f"policy spec must be a kind string or Scheduler, got {spec!r}"
            )
        if name in self._sims:
            raise SimulationError(f"duplicate session policy {name!r}")
        sink = (
            StreamingMetrics(
                "bounded", reservoir_seed=len(self._sims)
            )
            if self.metrics_mode == "bounded"
            else None
        )
        sim = Simulator(
            Workload((), self.total_procs, name=self.name),
            instance,
            metrics_sink=sink,
        )
        sim.run_until_time(self._now)  # prime at the current boundary
        self._sims[name] = sim
        return name

    @property
    def policies(self) -> tuple[str, ...]:
        """Names of every policy this session simulates."""
        return tuple(self._sims)

    def _sim(self, policy: str | None) -> tuple[str, Simulator]:
        name = self.primary if policy is None else policy
        try:
            return name, self._sims[name]
        except KeyError:
            raise SimulationError(
                f"unknown policy {name!r}; this session has {self.policies}"
            ) from None

    # -- submissions and time -------------------------------------------------

    @property
    def clock(self) -> float:
        """Current simulated time (the live watermark)."""
        return self._now

    def submit(
        self,
        job: Job | None = None,
        *,
        runtime: float | None = None,
        procs: int | None = None,
        estimate: float | None = None,
        submit_time: float | None = None,
        job_id: int | None = None,
    ) -> int:
        """Queue a job for arrival; returns its id.

        Either pass a ready :class:`~repro.workload.job.Job` or the
        field values (``submit_time`` defaults to *now*, ``estimate`` to
        the runtime, the id to the next free one).  Submissions must not
        land in the simulated past — the session's time has already been
        played beyond them — and ids must be unique; both violations
        raise :class:`~repro.errors.SimulationError`.
        """
        if job is None:
            if runtime is None or procs is None:
                raise SimulationError(
                    "submit() needs a Job or at least runtime= and procs="
                )
            job = Job(
                job_id=self._next_id if job_id is None else job_id,
                submit_time=self._now if submit_time is None else submit_time,
                runtime=runtime,
                estimate=estimate if estimate is not None else runtime,
                procs=procs,
            )
        if job.submit_time < self._now:
            raise SimulationError(
                f"cannot submit job {job.job_id} at t={job.submit_time}: the "
                f"session already simulated up to t={self._now} "
                "(submissions into the simulated past would silently rewrite "
                "history; this session refuses instead)"
            )
        if job.job_id > _MAX_JOB_ID:
            raise SimulationError(
                f"job id {job.job_id} exceeds the maximum {_MAX_JOB_ID}"
            )
        if any(existing.job_id == job.job_id for existing in self._jobs):
            raise SimulationError(f"duplicate job id {job.job_id}")
        self._jobs.append(job)
        self._next_id = max(self._next_id, job.job_id + 1)
        self._dirty = True
        return job.job_id

    def submit_table(self, table: JobTable) -> tuple[int, ...]:
        """Bulk-queue every job of a columnar table; returns the ids.

        The table analogue of calling :meth:`submit` per row, with the
        same refusals (no submissions into the simulated past, no id
        collisions, ids below the reservation base) — but checked over
        whole columns and materialized once through the trusted bulk
        constructor, so feeding a session a trace segment costs no
        per-job Python validation.  The table itself proved the per-row
        invariants at construction.
        """
        n = len(table)
        if n == 0:
            return ()
        import numpy as np

        submit = table.columns["submit_time"]
        past = submit < self._now
        if past.any():
            index = int(np.argmax(past))
            job_id = int(table.columns["job_id"][index])
            raise SimulationError(
                f"cannot submit job {job_id} at t={float(submit[index])}: the "
                f"session already simulated up to t={self._now} "
                "(submissions into the simulated past would silently rewrite "
                "history; this session refuses instead)"
            )
        ids = table.columns["job_id"]
        if table.columns["procs"].max() > self.total_procs:
            index = int(np.argmax(table.columns["procs"] > self.total_procs))
            raise SimulationError(
                f"job {int(ids[index])} needs "
                f"{int(table.columns['procs'][index])} procs but the session "
                f"machine has {self.total_procs}"
            )
        if int(ids.max()) > _MAX_JOB_ID:
            index = int(np.argmax(ids > _MAX_JOB_ID))
            raise SimulationError(
                f"job id {int(ids[index])} exceeds the maximum {_MAX_JOB_ID}"
            )
        # Duplicates *within* the table were rejected at its construction;
        # only collisions against already-submitted jobs remain.
        taken = np.fromiter(
            (job.job_id for job in self._jobs), dtype=ids.dtype, count=len(self._jobs)
        )
        collisions = np.isin(ids, taken)
        if collisions.any():
            raise SimulationError(
                f"duplicate job id {int(ids[int(np.argmax(collisions))])}"
            )
        self._jobs.extend(Job._from_trusted_columns(table.field_lists()))
        self._next_id = max(self._next_id, int(ids.max()) + 1)
        self._dirty = True
        return tuple(int(job_id) for job_id in ids)

    def _flush(self) -> None:
        """Push buffered submissions into every live simulator."""
        if not self._dirty:
            return
        workload = Workload.from_jobs(self._jobs, self.total_procs, name=self.name)
        self._jobs = list(workload.jobs)
        for sim in self._sims.values():
            sim.extend_workload(workload)
        self._dirty = False

    def advance(self, to_time: float | None = None, *, dt: float | None = None) -> float:
        """Play every policy forward to ``to_time`` (or by ``dt`` seconds).

        Time is monotone: advancing behind the current clock raises
        :class:`~repro.errors.SimulationError`.  Advancing beyond the
        last submitted arrival is fine — running jobs keep finishing and
        the queue drains; a later :meth:`submit` continues the stream.
        Returns the new clock.
        """
        if (to_time is None) == (dt is None):
            raise SimulationError("advance() needs exactly one of to_time= or dt=")
        if dt is not None:
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(f"advance() dt must be finite and >= 0, got {dt}")
            to_time = self._now + dt
        assert to_time is not None
        if to_time < self._now:
            raise SimulationError(
                f"advance() targets must be non-decreasing: asked for "
                f"t={to_time} but the session is already at t={self._now}"
            )
        self._flush()
        for sim in self._sims.values():
            sim.run_until_time(to_time)
        self._now = to_time
        return self._now

    # -- queries --------------------------------------------------------------

    def branch(self, policy: str | None = None) -> SessionBranch:
        """Fork one policy's live state into an immutable query branch.

        Cheap (one simulator snapshot); the branch then answers
        :meth:`~SessionBranch.what_if` / :meth:`~SessionBranch.forecast`
        without touching the session, so callers may drain it outside
        any lock.
        """
        self._flush()
        name, sim = self._sim(policy)
        return SessionBranch(
            policy=name,
            snapshot=sim.snapshot(),
            jobs=tuple(self._jobs),
            total_procs=self.total_procs,
            now=self._now,
            name=self.name,
            free_id=self._next_id,
        )

    def what_if(
        self,
        job: Job | None = None,
        *,
        runtime: float | None = None,
        procs: int | None = None,
        estimate: float | None = None,
        submit_time: float | None = None,
        policy: str | None = None,
    ) -> WhatIfReport:
        """Answer "when would this job start (and my queue finish)?".

        Builds the hypothetical job exactly like :meth:`submit` — but
        nothing is ever submitted: the question is answered on a fork
        and discarded.  With no job at all, reports the drain of the
        existing queue.  ``policy`` targets an alternative scheduler.
        """
        if job is None and runtime is not None:
            if procs is None:
                raise SimulationError("what_if() needs procs= with runtime=")
            job = Job(
                job_id=self._next_id,
                submit_time=self._now if submit_time is None else submit_time,
                runtime=runtime,
                estimate=estimate if estimate is not None else runtime,
                procs=procs,
            )
        return self.branch(policy).what_if(job)

    def queue_forecast(
        self, horizon: float, *, policy: str | None = None
    ) -> QueueForecast:
        """What the queue and machine look like ``horizon`` seconds out."""
        return self.branch(policy).forecast(horizon)

    # -- snapshot / fork ------------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        """Capture the whole session as an independent copy."""
        self._flush()
        return SessionSnapshot(
            name=self.name,
            total_procs=self.total_procs,
            clock=self._now,
            jobs=tuple(self._jobs),
            metrics_mode=self.metrics_mode,
            primary=self.primary,
            sim_snapshots={
                name: sim.snapshot() for name, sim in self._sims.items()
            },
            next_id=self._next_id,
        )

    @classmethod
    def restore(cls, snapshot: SessionSnapshot) -> "Session":
        """Rebuild a live session from a :class:`SessionSnapshot`."""
        session = cls.__new__(cls)
        session.name = snapshot.name
        session.total_procs = snapshot.total_procs
        session.metrics_mode = snapshot.metrics_mode
        session._default_priority = "FCFS"
        session._options = {}
        session._jobs = list(snapshot.jobs)
        session._dirty = False
        session._now = snapshot.clock
        session._next_id = snapshot.next_id
        session.primary = snapshot.primary
        workload = Workload.from_jobs(
            snapshot.jobs, snapshot.total_procs, name=snapshot.name
        )
        session._sims = {
            name: Simulator.resume(sim_snapshot, workload)
            for name, sim_snapshot in snapshot.sim_snapshots.items()
        }
        return session

    def fork(self) -> "Session":
        """An independent copy of the live session (snapshot + restore)."""
        return Session.restore(self.snapshot())

    # -- introspection --------------------------------------------------------

    def metrics(self, policy: str | None = None) -> RunMetrics:
        """Aggregates over every job completed so far under ``policy``."""
        self._flush()
        _, sim = self._sim(policy)
        utilization = sim.machine.utilization()
        if sim.metrics_sink is not None:
            return sim.metrics_sink.run_metrics(utilization=utilization)
        from repro.metrics.collector import summarize

        return summarize(sim.completed_records, utilization=utilization)

    def stats(self, policy: str | None = None) -> SessionStats:
        """A point-in-time card of queue depth, utilization, and metrics."""
        self._flush()
        name, sim = self._sim(policy)
        sink = sim.metrics_sink
        if sink is not None:
            overall = sink.overall_summary()
            wait_p50 = sink.wait_quantile(0.5)
            wait_p99 = sink.wait_quantile(0.99)
            records_held = sink.records_held
        else:
            records = sim.completed_records
            overall = MetricSummary.of(list(records))
            waits = sorted(r.wait for r in records)
            wait_p50 = waits[len(waits) // 2] if waits else math.nan
            wait_p99 = waits[min(len(waits) - 1, int(0.99 * len(waits)))] if waits else math.nan
            records_held = len(records)
        return SessionStats(
            name=self.name,
            policy=name,
            policies=self.policies,
            clock=self._now,
            total_procs=self.total_procs,
            free_procs=sim.machine.free_procs,
            submitted=len(self._jobs),
            completed=sim.completed_count,
            running=len(sim.scheduler.running_jobs),
            queued=sim.scheduler.queue_length,
            utilization=sim.machine.utilization(),
            overall=overall,
            wait_p50=wait_p50,
            wait_p99=wait_p99,
            metrics_mode=self.metrics_mode,
            records_held=records_held,
        )

    def pending_jobs(self, policy: str | None = None) -> tuple[Job, ...]:
        """Jobs submitted but not yet finished under ``policy``."""
        self._flush()
        _, sim = self._sim(policy)
        queued = list(sim.scheduler.queued_jobs)
        running = [job for job, _ in sim.scheduler.running_jobs]
        future = [
            job for job in self._jobs if job.submit_time >= sim.watermark
        ]
        seen: set[int] = set()
        out = []
        for job in itertools.chain(queued, running, future):
            if job.job_id not in seen:
                seen.add(job.job_id)
                out.append(job)
        return tuple(sorted(out, key=lambda j: (j.submit_time, j.job_id)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session {self.name!r} t={self._now} jobs={len(self._jobs)} "
            f"policies={list(self._sims)}>"
        )

"""Thin HTTP/JSON skin over a live session (the ``repro serve`` CLI).

Stdlib-only (:class:`http.server.ThreadingHTTPServer`): one process, one
authoritative :class:`~repro.serve.session.Session`, JSON in/out.  The
threading model mirrors :mod:`repro.serve.async_api`: every handler
thread takes the session lock only to mutate or fork, and drains query
branches outside it, so slow what-ifs never block submissions.

Endpoints (all JSON bodies; errors come back as
``{"error": "..."}`` with a 4xx status):

========  ==============  ================================================
method    path            action
========  ==============  ================================================
GET       /healthz        liveness probe — ``{"ok": true}``
GET       /state          :meth:`Session.stats` card (``?policy=`` opt.)
POST      /submit         body = job payload → ``{"job_id": ...}``
POST      /advance        body ``{"to_time": t}`` or ``{"dt": d}``
POST      /what-if        body ``{"job": {...}?, "policy": "..."?}``
POST      /forecast       body ``{"horizon": h, "policy": "..."?}``
GET       /metrics        full RunMetrics payload (``?policy=`` opt.)
========  ==============  ================================================

Use :func:`make_server` (port 0 for an ephemeral port) in tests and
embedders; :func:`serve_forever` is the CLI entry point.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, SimulationError
from repro.serve.protocol import (
    job_from_payload,
    queue_forecast_to_payload,
    run_metrics_to_payload,
    stats_to_payload,
    what_if_to_payload,
)
from repro.serve.session import Session
from repro.workload.job import Job

__all__ = ["SessionHTTPServer", "make_server", "serve_forever"]

_MAX_BODY_BYTES = 1 << 20


class SessionHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns one session plus its lock."""

    daemon_threads = True

    def __init__(self, address, handler, session: Session) -> None:
        super().__init__(address, handler)
        self.session = session
        self.session_lock = threading.Lock()


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes, decodes JSON, maps errors to statuses."""

    server: SessionHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; the CLI prints its own line per request

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise SimulationError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise SimulationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SimulationError("request body must be a JSON object")
        return payload

    def _policy(self) -> str | None:
        query = parse_qs(urlparse(self.path).query)
        values = query.get("policy")
        return values[0] if values else None

    def _route(self, method: str) -> None:
        path = urlparse(self.path).path
        try:
            handler = getattr(self, f"_{method}_{path.strip('/').replace('-', '_')}")
        except AttributeError:
            self._reply(404, {"error": f"no such endpoint: {method} {path}"})
            return
        try:
            handler()
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("get")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._route("post")

    # -- endpoints ------------------------------------------------------------

    def _get_healthz(self) -> None:
        with self.server.session_lock:
            clock = self.server.session.clock
        self._reply(200, {"ok": True, "clock": clock})

    def _get_state(self) -> None:
        with self.server.session_lock:
            stats = self.server.session.stats(self._policy())
        self._reply(200, stats_to_payload(stats))

    def _get_metrics(self) -> None:
        with self.server.session_lock:
            metrics = self.server.session.metrics(self._policy())
        self._reply(200, run_metrics_to_payload(metrics))

    def _post_submit(self) -> None:
        kwargs = job_from_payload(self._read_body())
        with self.server.session_lock:
            job_id = self.server.session.submit(**kwargs)
            clock = self.server.session.clock
        self._reply(200, {"job_id": job_id, "clock": clock})

    def _post_advance(self) -> None:
        body = self._read_body()
        to_time = body.get("to_time")
        dt = body.get("dt")
        with self.server.session_lock:
            clock = self.server.session.advance(to_time, dt=dt)
        self._reply(200, {"clock": clock})

    def _post_what_if(self) -> None:
        body = self._read_body()
        policy = body.get("policy")
        job = None
        with self.server.session_lock:
            # fork under the lock; the expensive drain happens outside it
            if body.get("job") is not None:
                kwargs = job_from_payload(body["job"])
                session = self.server.session
                job = Job(
                    job_id=kwargs.get("job_id", session._next_id),
                    submit_time=kwargs.get("submit_time", session.clock),
                    runtime=kwargs["runtime"],
                    estimate=kwargs.get("estimate", kwargs["runtime"]),
                    procs=kwargs["procs"],
                )
            branch = self.server.session.branch(policy)
        report = branch.what_if(job)
        include_metrics = bool(body.get("include_metrics", False))
        self._reply(200, what_if_to_payload(report, include_metrics=include_metrics))

    def _post_forecast(self) -> None:
        body = self._read_body()
        horizon = body.get("horizon")
        if not isinstance(horizon, (int, float)) or isinstance(horizon, bool):
            raise SimulationError("forecast body needs a numeric 'horizon'")
        with self.server.session_lock:
            branch = self.server.session.branch(body.get("policy"))
        forecast = branch.forecast(float(horizon))
        self._reply(200, queue_forecast_to_payload(forecast))


def make_server(
    session: Session, host: str = "127.0.0.1", port: int = 0
) -> SessionHTTPServer:
    """Build (but don't start) the HTTP server; port 0 picks a free port.

    Start it with ``threading.Thread(target=server.serve_forever)`` in
    tests, or call :func:`serve_forever` to block.
    """
    return SessionHTTPServer((host, port), _Handler, session)


def serve_forever(session: Session, host: str = "127.0.0.1", port: int = 8537) -> None:
    """Run the HTTP layer until interrupted (the ``repro serve`` command)."""
    server = make_server(session, host, port)
    bound = server.server_address
    print(
        f"serving session {session.name!r} ({session.total_procs} procs, "
        f"policies {list(session.policies)}) on http://{bound[0]}:{bound[1]}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()

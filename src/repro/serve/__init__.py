"""Scheduler-as-a-service: live sessions, forked what-ifs, three front-ends.

The paper answers "how would this queue fare under conservative vs
EASY?" offline; this package answers it *live*.  A
:class:`~repro.serve.session.Session` holds one authoritative simulator
per policy, accepts streaming submissions, and serves what-if /
forecast queries by snapshot-forking the paused state — queries never
perturb the live trajectory.  Three ways in:

* **Python** — ``from repro.serve import Session``;
* **asyncio** — :class:`~repro.serve.async_api.AsyncSession`
  multiplexes many in-flight queries over one state;
* **HTTP/JSON** — ``repro serve`` (see :mod:`repro.serve.http`).

See DESIGN.md §11 for the architecture and
:mod:`repro.metrics.streaming` for the bounded-memory metrics the live
simulators feed.
"""

from repro.serve.async_api import AsyncSession
from repro.serve.http import make_server, serve_forever
from repro.serve.session import (
    JobForecast,
    QueueForecast,
    RunningJob,
    Session,
    SessionBranch,
    SessionSnapshot,
    SessionStats,
    WhatIfReport,
)

__all__ = [
    "Session",
    "SessionBranch",
    "SessionSnapshot",
    "SessionStats",
    "WhatIfReport",
    "QueueForecast",
    "JobForecast",
    "RunningJob",
    "AsyncSession",
    "make_server",
    "serve_forever",
]

"""Asyncio front-end: many in-flight what-if queries over one session.

:class:`AsyncSession` wraps a (not thread-safe) synchronous
:class:`~repro.serve.session.Session` for use from an event loop.  The
split that makes concurrency safe is already in the session design:

* **mutations and forks are cheap and serialized** — ``submit`` /
  ``advance`` / ``branch`` touch the live state, so they run under a
  single :class:`asyncio.Lock`;
* **query drains are expensive and independent** — a
  :class:`~repro.serve.session.SessionBranch` taken under the lock is
  immutable and detached, so draining it runs in the default thread-pool
  executor *outside* the lock.

The result: one coroutine can stream submissions while dozens of
what-if queries drain concurrently against forks of the same paused
state, none of them blocking the loop.  This is the multiplexing layer
the HTTP server (:mod:`repro.serve.http`) is a thin skin over, and is
usable directly from any asyncio application.
"""

from __future__ import annotations

import asyncio

from repro.errors import SimulationError
from repro.serve.session import (
    QueueForecast,
    Session,
    SessionStats,
    WhatIfReport,
)
from repro.workload.job import Job

__all__ = ["AsyncSession"]


class AsyncSession:
    """Async wrapper multiplexing concurrent queries over one live session.

    All coroutine methods mirror the synchronous
    :class:`~repro.serve.session.Session` API.  Construct with a ready
    session (whose ownership transfers here — don't mutate it directly
    afterwards) or via keyword arguments forwarded to ``Session(...)``.
    """

    def __init__(self, session: Session | None = None, **session_kwargs) -> None:
        if session is None:
            session = Session(**session_kwargs)
        elif session_kwargs:
            raise TypeError("pass either a session or Session kwargs, not both")
        self._session = session
        self._lock = asyncio.Lock()

    @property
    def session(self) -> Session:
        """The wrapped synchronous session (for lock-free reads like name)."""
        return self._session

    async def submit(self, job: Job | None = None, **fields) -> int:
        """Queue a job for arrival; see :meth:`Session.submit`."""
        async with self._lock:
            return self._session.submit(job, **fields)

    async def advance(
        self, to_time: float | None = None, *, dt: float | None = None
    ) -> float:
        """Play the live state forward; see :meth:`Session.advance`."""
        async with self._lock:
            return self._session.advance(to_time, dt=dt)

    async def what_if(
        self, job: Job | None = None, *, policy: str | None = None, **fields
    ) -> WhatIfReport:
        """Fork under the lock, drain in the executor — concurrent-safe.

        While one what-if drains, other coroutines may submit, advance,
        or launch further queries; each query answers against the state
        at *its* fork instant.
        """
        loop = asyncio.get_running_loop()
        async with self._lock:
            if job is None and fields:
                if "runtime" not in fields or "procs" not in fields:
                    raise SimulationError("what_if() needs runtime= and procs=")
                estimate = fields.get("estimate")
                job = Job(
                    job_id=fields.get("job_id", self._session._next_id),
                    submit_time=fields.get("submit_time", self._session.clock),
                    runtime=fields["runtime"],
                    estimate=estimate if estimate is not None else fields["runtime"],
                    procs=fields["procs"],
                )
            branch = self._session.branch(policy)
        return await loop.run_in_executor(None, branch.what_if, job)

    async def queue_forecast(
        self, horizon: float, *, policy: str | None = None
    ) -> QueueForecast:
        """Fork under the lock, advance the branch in the executor."""
        loop = asyncio.get_running_loop()
        async with self._lock:
            branch = self._session.branch(policy)
        return await loop.run_in_executor(None, branch.forecast, horizon)

    async def stats(self, policy: str | None = None) -> SessionStats:
        """Point-in-time session card; see :meth:`Session.stats`."""
        async with self._lock:
            return self._session.stats(policy)

    async def clock(self) -> float:
        """Current simulated time."""
        async with self._lock:
            return self._session.clock

"""Wire format for the serve layer: JSON codecs for sessions and reports.

One round-trippable payload shape per serve-layer object, shared by the
HTTP layer (:mod:`repro.serve.http`) and any client that wants to talk
to it.  Payloads are plain ``dict``/``list``/scalar trees ready for
``json.dumps`` — *strict* JSON: non-finite aggregates (the NaN means of
an empty summary) encode as ``null``, so any client-side parser accepts
the output, not just Python's lenient default.

Decoders validate shape and raise :class:`~repro.errors.SimulationError`
with a field-level message on malformed input, so the HTTP layer can
turn client mistakes into 400s rather than stack traces.

Metrics are encoded by :func:`run_metrics_to_payload` — an
*aggregate*-shaped payload (overall + per-group summaries), unlike the
record-row payload of :func:`repro.exec.serialize.metrics_to_payload`:
a bounded-mode session holds aggregates but no per-job rows, so a
records-based encoding would silently serve empty summaries.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.metrics.collector import MetricSummary, RunMetrics
from repro.serve.session import (
    JobForecast,
    QueueForecast,
    RunningJob,
    SessionStats,
    WhatIfReport,
)
from repro.workload.job import Job

__all__ = [
    "job_to_payload",
    "job_from_payload",
    "forecast_to_payload",
    "running_to_payload",
    "what_if_to_payload",
    "queue_forecast_to_payload",
    "stats_to_payload",
    "summary_to_payload",
    "run_metrics_to_payload",
]


def _finite(value: float):
    """A float for the wire: ``None`` instead of NaN/inf (strict JSON)."""
    return value if math.isfinite(value) else None


def summary_to_payload(summary: MetricSummary) -> dict:
    """Encode one :class:`~repro.metrics.collector.MetricSummary`."""
    return {
        "count": summary.count,
        "mean_bounded_slowdown": _finite(summary.mean_bounded_slowdown),
        "mean_turnaround": _finite(summary.mean_turnaround),
        "mean_wait": _finite(summary.mean_wait),
        "max_turnaround": _finite(summary.max_turnaround),
        "max_bounded_slowdown": _finite(summary.max_bounded_slowdown),
    }


def run_metrics_to_payload(metrics: RunMetrics) -> dict:
    """Encode a :class:`~repro.metrics.collector.RunMetrics` as aggregates.

    Works for bounded-mode metrics (which hold no per-job rows); see the
    module docstring for why the record-row codec is not used here.
    """
    return {
        "overall": summary_to_payload(metrics.overall),
        "by_category": {
            category.value: summary_to_payload(summary)
            for category, summary in metrics.by_category.items()
        },
        "by_estimate_quality": {
            quality.value: summary_to_payload(summary)
            for quality, summary in metrics.by_estimate_quality.items()
        },
        "utilization": _finite(metrics.utilization),
        "makespan": _finite(metrics.makespan),
        "record_count": len(metrics.records),
    }


def _require(payload: dict, field: str, kinds, *, optional: bool = False):
    """Pull ``field`` out of ``payload``, type-checked; SimulationError if bad."""
    if field not in payload:
        if optional:
            return None
        raise SimulationError(f"payload missing required field {field!r}")
    value = payload[field]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise SimulationError(
            f"payload field {field!r} must be {kinds}, got {type(value).__name__}"
        )
    return value


def job_to_payload(job: Job) -> dict:
    """Encode a :class:`~repro.workload.job.Job` (scheduling fields only)."""
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "runtime": job.runtime,
        "estimate": job.estimate,
        "procs": job.procs,
    }


def job_from_payload(payload: dict) -> dict:
    """Decode a submission payload into :meth:`Session.submit` kwargs.

    ``runtime`` and ``procs`` are required; ``estimate``, ``submit_time``
    and ``job_id`` are optional (the session fills in its defaults).
    """
    if not isinstance(payload, dict):
        raise SimulationError(
            f"job payload must be an object, got {type(payload).__name__}"
        )
    runtime = _require(payload, "runtime", (int, float))
    procs = _require(payload, "procs", int)
    if runtime <= 0 or not math.isfinite(runtime):
        raise SimulationError(f"job runtime must be finite and > 0, got {runtime}")
    if procs <= 0:
        raise SimulationError(f"job procs must be > 0, got {procs}")
    kwargs: dict = {"runtime": float(runtime), "procs": procs}
    estimate = _require(payload, "estimate", (int, float), optional=True)
    if estimate is not None:
        kwargs["estimate"] = float(estimate)
    submit_time = _require(payload, "submit_time", (int, float), optional=True)
    if submit_time is not None:
        kwargs["submit_time"] = float(submit_time)
    job_id = _require(payload, "job_id", int, optional=True)
    if job_id is not None:
        kwargs["job_id"] = job_id
    return kwargs


def forecast_to_payload(forecast: JobForecast) -> dict:
    """Encode one per-job prediction."""
    return {
        "job_id": forecast.job_id,
        "submit_time": forecast.submit_time,
        "start_time": forecast.start_time,
        "finish_time": forecast.finish_time,
        "wait": forecast.wait,
    }


def running_to_payload(running: RunningJob) -> dict:
    """Encode one running-job line of a queue forecast."""
    return {
        "job_id": running.job_id,
        "procs": running.procs,
        "start_time": running.start_time,
        "estimated_finish": running.estimated_finish,
    }


def what_if_to_payload(report: WhatIfReport, *, include_metrics: bool = True) -> dict:
    """Encode a :class:`~repro.serve.session.WhatIfReport`."""
    payload = {
        "policy": report.policy,
        "asked_at": report.asked_at,
        "target": None if report.target is None else forecast_to_payload(report.target),
        "pending": [forecast_to_payload(p) for p in report.pending],
        "drained_at": report.drained_at,
    }
    if include_metrics:
        payload["metrics"] = run_metrics_to_payload(report.metrics)
    return payload


def queue_forecast_to_payload(forecast: QueueForecast) -> dict:
    """Encode a :class:`~repro.serve.session.QueueForecast`."""
    return {
        "policy": forecast.policy,
        "asked_at": forecast.asked_at,
        "horizon": forecast.horizon,
        "at_time": forecast.at_time,
        "running": [running_to_payload(r) for r in forecast.running],
        "queued_ids": list(forecast.queued_ids),
        "free_procs": forecast.free_procs,
        "completed_in_horizon": forecast.completed_in_horizon,
        "started": [forecast_to_payload(p) for p in forecast.started],
        "utilization": _finite(forecast.utilization),
    }


def stats_to_payload(stats: SessionStats) -> dict:
    """Encode a :class:`~repro.serve.session.SessionStats` card."""
    return {
        "name": stats.name,
        "policy": stats.policy,
        "policies": list(stats.policies),
        "clock": stats.clock,
        "total_procs": stats.total_procs,
        "free_procs": stats.free_procs,
        "submitted": stats.submitted,
        "completed": stats.completed,
        "running": stats.running,
        "queued": stats.queued,
        "utilization": _finite(stats.utilization),
        "mean_bounded_slowdown": _finite(stats.overall.mean_bounded_slowdown),
        "mean_wait": _finite(stats.overall.mean_wait),
        "wait_p50": _finite(stats.wait_p50),
        "wait_p99": _finite(stats.wait_p99),
        "metrics_mode": stats.metrics_mode,
        "records_held": stats.records_held,
    }

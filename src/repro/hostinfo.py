"""Host provenance: the facts a benchmark number is meaningless without.

Every ``BENCH_*.json`` writer stamps :func:`host_provenance` into its
payload under ``"host"``, and ``benchmarks/compare_bench.py`` warns (but
never fails) when two files being diffed were measured on differently
shaped hosts — a 1-CPU container and a 16-core workstation produce
legitimately different numbers, and the comparison should say so instead
of letting a reader chase a phantom regression.  Keys are chosen to be
stable, cheap, and dependency-free.
"""

from __future__ import annotations

import os
import platform

__all__ = ["host_provenance"]


def host_provenance() -> dict:
    """JSON-safe facts describing the measuring host."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.system().lower() or "unknown",
        "machine": platform.machine() or "unknown",
        "python": platform.python_version(),
    }

"""Preemptive (suspension-based) scheduling.

Reproduces the core mechanism of the paper's reference [6] — Kettimuthu,
Subramani, Srinivasan, Gopalsamy & Sadayappan, *Selective preemption
strategies for parallel job scheduling* (ICPP 2002): a waiting job whose
expansion factor has grown far beyond that of some running jobs may
*suspend* them, take their processors, and let them resume later.

The subpackage has its own engine because preemption breaks the
run-to-completion assumption of :mod:`repro.sim`: jobs execute in
intervals, finish events can be invalidated by a suspension, and the
metric records carry the suspension history.
"""

from repro.preempt.records import PreemptedJob, summarize_preemptive
from repro.preempt.scheduler import (
    RunningView,
    SelectiveSuspensionScheduler,
    SuspendDecision,
)
from repro.preempt.engine import PreemptiveSimulator, PreemptiveResult

__all__ = [
    "PreemptedJob",
    "summarize_preemptive",
    "RunningView",
    "SelectiveSuspensionScheduler",
    "SuspendDecision",
    "PreemptiveSimulator",
    "PreemptiveResult",
]

"""Outcome records for preemptive schedules.

A preempted job executes in one or more disjoint intervals; the record
keeps all of them so metrics (and tests) can reason about suspension
counts and suspended time, while the paper's headline metrics (bounded
slowdown, turnaround) fall out of the first start and the final finish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.metrics.categories import Category, categorize
from repro.metrics.collector import MetricSummary, RunMetrics
from repro.metrics.defs import BOUNDED_SLOWDOWN_THRESHOLD
from repro.workload.job import Job

__all__ = ["PreemptedJob", "summarize_preemptive"]


@dataclass(frozen=True)
class PreemptedJob:
    """One job's full execution history under a preemptive scheduler.

    ``overhead_per_suspension`` is the wall-clock cost each suspension
    added to the job's execution (state save/restore); the executed time
    must equal ``effective_runtime + n_suspensions x overhead``.
    """

    job: Job
    intervals: tuple[tuple[float, float], ...]
    overhead_per_suspension: float = 0.0

    def __post_init__(self) -> None:
        if not self.intervals:
            raise SimulationError(f"job {self.job.job_id}: no execution intervals")
        if self.overhead_per_suspension < 0:
            raise SimulationError(
                f"job {self.job.job_id}: negative suspension overhead"
            )
        previous_end = -math.inf
        for start, end in self.intervals:
            if end <= start:
                raise SimulationError(
                    f"job {self.job.job_id}: empty interval [{start}, {end})"
                )
            if start < previous_end:
                raise SimulationError(
                    f"job {self.job.job_id}: overlapping intervals at {start}"
                )
            previous_end = end
        if self.intervals[0][0] < self.job.submit_time - 1e-9:
            raise SimulationError(
                f"job {self.job.job_id}: started before submission"
            )
        executed = sum(end - start for start, end in self.intervals)
        expected = (
            self.job.effective_runtime
            + self.n_suspensions * self.overhead_per_suspension
        )
        if not math.isclose(executed, expected, rel_tol=1e-9, abs_tol=1e-6):
            raise SimulationError(
                f"job {self.job.job_id}: executed {executed}s, expected "
                f"{expected}s"
            )

    @property
    def first_start(self) -> float:
        return self.intervals[0][0]

    @property
    def finish_time(self) -> float:
        return self.intervals[-1][1]

    @property
    def wait(self) -> float:
        """Time before the first start (suspended time is counted
        separately, not as queue wait)."""
        return self.first_start - self.job.submit_time

    @property
    def suspended_time(self) -> float:
        """Total time spent suspended between intervals."""
        gaps = 0.0
        for (_, end_a), (start_b, _) in zip(self.intervals, self.intervals[1:]):
            gaps += start_b - end_a
        return gaps

    @property
    def n_suspensions(self) -> int:
        return len(self.intervals) - 1

    @property
    def turnaround(self) -> float:
        return self.finish_time - self.job.submit_time

    @property
    def bounded_slowdown(self) -> float:
        """(turnaround - runtime + max(runtime, T)) / max(runtime, T).

        Equivalent to the paper's definition with "wait" generalized to
        all non-running time (queue wait + suspended time).
        """
        runtime = self.job.effective_runtime
        denominator = max(runtime, BOUNDED_SLOWDOWN_THRESHOLD)
        non_running = self.turnaround - runtime
        return (non_running + denominator) / denominator

    @property
    def category(self) -> Category:
        return categorize(self.job)


def summarize_preemptive(
    records: list[PreemptedJob] | tuple[PreemptedJob, ...],
    *,
    utilization: float = math.nan,
) -> RunMetrics:
    """Aggregate preemptive records into the standard RunMetrics shape.

    The per-category and estimate-quality breakdowns reuse the
    non-preemptive classifiers; the ``records`` tuple of the returned
    object is empty (the preemptive records do not satisfy the
    non-preemptive CompletedJob invariants) — callers needing the raw
    records keep the list they passed in.
    """
    records = list(records)

    def summary(group: list[PreemptedJob]) -> MetricSummary:
        if not group:
            return MetricSummary.empty()
        slowdowns = [r.bounded_slowdown for r in group]
        turnarounds = [r.turnaround for r in group]
        waits = [r.wait for r in group]
        return MetricSummary(
            count=len(group),
            mean_bounded_slowdown=sum(slowdowns) / len(group),
            mean_turnaround=sum(turnarounds) / len(group),
            mean_wait=sum(waits) / len(group),
            max_turnaround=max(turnarounds),
            max_bounded_slowdown=max(slowdowns),
        )

    by_category = {
        category: summary([r for r in records if r.category is category])
        for category in Category
    }
    from repro.metrics.categories import EstimateQuality, estimate_quality

    by_quality = {
        quality: summary(
            [r for r in records if estimate_quality(r.job) is quality]
        )
        for quality in EstimateQuality
    }
    makespan = 0.0
    if records:
        makespan = max(r.finish_time for r in records) - min(
            r.job.submit_time for r in records
        )
    return RunMetrics(
        overall=summary(records),
        by_category=by_category,
        by_estimate_quality=by_quality,
        utilization=utilization,
        makespan=makespan,
        records=(),
    )

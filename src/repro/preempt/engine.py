"""The preemptive simulation engine.

Differences from :class:`repro.sim.engine.Simulator`:

* a running job can be *suspended*: its processors are released, its
  remaining work is recorded, and it goes back to the waiting pool;
* finish events carry an *epoch* so a suspension invalidates the finish
  event scheduled at the job's previous resume (the event queue does not
  support removal — stale epochs are simply ignored);
* the scheduler is a policy object returning a
  :class:`~repro.preempt.scheduler.SuspendDecision` (starts + suspends)
  from a global view of the waiting and running sets.

Per batch of same-timestamp events the engine releases all completions,
admits all arrivals, then runs the decision loop until the policy has
nothing more to do (bounded by an iteration cap — a correct policy
converges because preemption criteria are monotone).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cluster.machine import Machine
from repro.errors import SchedulingError, SimulationError
from repro.preempt.records import PreemptedJob, summarize_preemptive
from repro.preempt.scheduler import RunningView, SelectiveSuspensionScheduler
from repro.metrics.collector import RunMetrics
from repro.workload.job import Job, Workload

__all__ = ["PreemptiveSimulator", "PreemptiveResult"]

_FINISH = 0
_ARRIVAL = 1
_TICK = 2


@dataclass(frozen=True)
class PreemptiveResult:
    """Outcome of one preemptive run."""

    workload_name: str
    scheduler_name: str
    metrics: RunMetrics
    records: tuple[PreemptedJob, ...] = field(repr=False)
    total_suspensions: int = 0

    def start_times(self) -> dict[int, float]:
        return {r.job.job_id: r.first_start for r in self.records}


class PreemptiveSimulator:
    """Drives one workload through a suspension-based policy."""

    #: Safety bound on decision-loop iterations per event batch.
    MAX_DECISION_ROUNDS = 10_000

    def __init__(
        self,
        workload: Workload,
        scheduler: SelectiveSuspensionScheduler,
        *,
        decision_interval: float = 300.0,
        suspension_overhead: float = 0.0,
    ) -> None:
        """``decision_interval``: while jobs wait, the policy is re-run at
        least this often even with no completions or arrivals — expansion
        factors grow with wall-clock time, so suspension eligibility can
        appear between job events (unlike reservation-based schedulers,
        whose decision points always coincide with events).

        ``suspension_overhead``: wall-clock seconds each suspension adds
        to the victim's remaining execution (state save + restore).  The
        paper's suspension-in-place variant is 0; checkpoint-to-disk
        schemes cost minutes."""
        if decision_interval <= 0:
            raise SimulationError(
                f"decision_interval must be > 0, got {decision_interval}"
            )
        if suspension_overhead < 0:
            raise SimulationError(
                f"suspension_overhead must be >= 0, got {suspension_overhead}"
            )
        self.workload = workload
        self.scheduler = scheduler
        self.decision_interval = decision_interval
        self.suspension_overhead = suspension_overhead
        self._tick_pending = False
        self.machine = Machine(workload.max_procs)
        self.clock = 0.0
        self._heap: list[tuple[tuple[float, int, int], Job | None, int]] = []
        self._counter = itertools.count()
        self._waiting: list[Job] = []
        self._running: dict[int, Job] = {}
        self._remaining: dict[int, float] = {}
        self._last_start: dict[int, float] = {}
        self._epoch: dict[int, int] = {}
        self._intervals: dict[int, list[tuple[float, float]]] = {}
        self._records: list[PreemptedJob] = []
        self._suspensions = 0
        self._ran = False

    def _push(self, time: float, kind: int, job: Job | None, epoch: int) -> None:
        heapq.heappush(self._heap, ((time, kind, next(self._counter)), job, epoch))

    # -- state transitions ------------------------------------------------------

    def _start(self, job: Job) -> None:
        """Start or resume a waiting job."""
        try:
            self._waiting.remove(job)
        except ValueError:
            raise SchedulingError(
                f"policy started job {job.job_id} which is not waiting"
            ) from None
        self.machine.allocate(job, self.clock)
        self._running[job.job_id] = job
        self._last_start[job.job_id] = self.clock
        epoch = self._epoch.get(job.job_id, 0) + 1
        self._epoch[job.job_id] = epoch
        remaining = self._remaining.setdefault(job.job_id, job.effective_runtime)
        self._push(self.clock + remaining, _FINISH, job, epoch)

    def _suspend(self, job: Job) -> None:
        """Suspend a running job back into the waiting pool."""
        if self._running.pop(job.job_id, None) is None:
            raise SchedulingError(
                f"policy suspended job {job.job_id} which is not running"
            )
        self.machine.release(job, self.clock)
        started = self._last_start[job.job_id]
        if self.clock <= started:
            raise SchedulingError(
                f"job {job.job_id} suspended the instant it started — "
                "the policy is thrashing"
            )
        self._intervals.setdefault(job.job_id, []).append((started, self.clock))
        # The suspension's save/restore cost is charged to the victim's
        # remaining execution time.
        self._remaining[job.job_id] -= self.clock - started
        self._remaining[job.job_id] += self.suspension_overhead
        self._epoch[job.job_id] += 1  # invalidate the pending finish event
        self._waiting.append(job)
        self._suspensions += 1

    def _executed(self, job: Job) -> float:
        """Wall-clock work done so far (past intervals + the current run)."""
        past = sum(
            end - start for start, end in self._intervals.get(job.job_id, [])
        )
        if job.job_id in self._running:
            past += self.clock - self._last_start[job.job_id]
        return past

    def _finish(self, job: Job) -> None:
        self.machine.release(job, self.clock)
        del self._running[job.job_id]
        started = self._last_start[job.job_id]
        self._intervals.setdefault(job.job_id, []).append((started, self.clock))
        self._remaining[job.job_id] = 0.0
        self._records.append(
            PreemptedJob(
                job,
                tuple(self._intervals[job.job_id]),
                overhead_per_suspension=self.suspension_overhead,
            )
        )

    # -- the decision loop -----------------------------------------------------------

    def _run_decisions(self) -> None:
        for _ in range(self.MAX_DECISION_ROUNDS):
            # Jobs started at this very instant are marked unsuspendable:
            # suspending a zero-elapsed job would thrash (and record an
            # empty interval).  They still appear in the view because the
            # backfilling shadow must account for their processors.
            running_view = [
                RunningView(
                    job=job,
                    estimated_finish=self.clock
                    + max(job.estimate - self._executed(job), 1e-9),
                    suspendable=self._last_start[job.job_id] < self.clock,
                )
                for job in self._running.values()
            ]
            decision = self.scheduler.decide(
                self.clock,
                list(self._waiting),
                running_view,
                self.machine.free_procs,
            )
            if not decision.starts and not decision.suspends:
                return
            for victim in decision.suspends:
                self._suspend(victim)
            for job in decision.starts:
                self._start(job)
        raise SchedulingError(
            f"{self.scheduler.name}: decision loop did not converge within "
            f"{self.MAX_DECISION_ROUNDS} rounds at t={self.clock}"
        )

    # -- main loop -----------------------------------------------------------------

    def run(self) -> PreemptiveResult:
        if self._ran:
            raise SimulationError("a PreemptiveSimulator instance can only run once")
        self._ran = True

        for job in self.workload:
            self._push(job.submit_time, _ARRIVAL, job, 0)

        while self._heap:
            batch_time = self._heap[0][0][0]
            self.clock = max(self.clock, batch_time)
            batch = []
            while self._heap and self._heap[0][0][0] == batch_time:
                key, job, epoch = heapq.heappop(self._heap)
                batch.append((key[1], job, epoch))

            for kind, job, epoch in batch:
                if kind == _FINISH:
                    assert job is not None
                    if self._epoch.get(job.job_id) != epoch:
                        continue  # stale: the job was suspended meanwhile
                    if job.job_id not in self._running:
                        continue
                    self._finish(job)
            for kind, job, _epoch in batch:
                if kind == _ARRIVAL:
                    assert job is not None
                    self._waiting.append(job)
                elif kind == _TICK:
                    self._tick_pending = False
            self._run_decisions()
            if self._waiting and not self._tick_pending:
                self._tick_pending = True
                self._push(
                    self.clock + self.decision_interval, _TICK, None, 0
                )

        if len(self._records) != len(self.workload):
            stuck = [j.job_id for j in self._waiting]
            raise SchedulingError(
                f"preemptive run completed {len(self._records)} of "
                f"{len(self.workload)} jobs (waiting: {stuck[:10]})"
            )
        metrics = summarize_preemptive(
            self._records, utilization=self.machine.utilization()
        )
        return PreemptiveResult(
            workload_name=self.workload.name,
            scheduler_name=self.scheduler.describe(),
            metrics=metrics,
            records=tuple(self._records),
            total_suspensions=self._suspensions,
        )

"""Selective-suspension scheduling policy (paper reference [6]).

The policy is EASY backfilling (one reservation for the blocked queue
head, shadow-safe and extra-processor backfills) *plus* the selective
suspension rule of Kettimuthu et al.: when even the reservation cannot
help the head — it has waited at least ``min_wait`` and its expansion
factor dwarfs that of some running jobs —

    ``xfactor(head) >= suspension_factor x xfactor(victim)``

the least-needy such victims are suspended until the head fits.  Suspended
jobs re-enter the waiting pool and resume through the same queue (their
expansion factors keep growing, so they cannot be starved indefinitely by
the same rule that suspended them — a job can only be preempted by one
with at least ``suspension_factor`` times its expansion factor, and that
relation is antisymmetric).

Simplifications relative to the full ICPP 2002 system (documented in
DESIGN.md): a single suspension decision per event (the blocked head
only), and no checkpoint/migration costs (suspension is instantaneous, as
in the paper's "suspension in place" variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.sched.priority.policies import FCFSPriority, PriorityPolicy, xfactor
from repro.workload.job import Job

__all__ = ["RunningView", "SuspendDecision", "SelectiveSuspensionScheduler"]

_EPS = 1e-9


@dataclass(frozen=True)
class RunningView:
    """What the policy may know about one running job."""

    job: Job
    estimated_finish: float  # now + max(estimate - executed, eps)
    suspendable: bool  # False for jobs started at this very instant


@dataclass
class SuspendDecision:
    """What the policy wants done at this instant."""

    starts: list[Job] = field(default_factory=list)  # waiting or suspended jobs
    suspends: list[Job] = field(default_factory=list)  # currently running jobs


class SelectiveSuspensionScheduler:
    """EASY backfilling + selective suspension (see module docstring)."""

    name = "SUSP"

    def __init__(
        self,
        priority: PriorityPolicy | None = None,
        *,
        suspension_factor: float = 2.0,
        min_wait: float = 300.0,
    ) -> None:
        if suspension_factor < 1.0:
            raise ConfigurationError(
                f"suspension_factor must be >= 1, got {suspension_factor}"
            )
        if min_wait < 0:
            raise ConfigurationError(f"min_wait must be >= 0, got {min_wait}")
        self.priority = priority or FCFSPriority()
        self.suspension_factor = suspension_factor
        self.min_wait = min_wait

    def describe(self) -> str:
        return f"{self.name}({self.priority.name}, sf={self.suspension_factor})"

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _shadow(
        head: Job, now: float, free: int, releases: list[tuple[float, int]]
    ) -> tuple[float, int]:
        available = free
        for finish, procs in sorted(releases):
            available += procs
            if available >= head.procs:
                return finish, available - head.procs
        raise SchedulingError(
            f"job {head.job_id} ({head.procs} procs) can never start"
        )

    # -- the decision ----------------------------------------------------------------

    def decide(
        self,
        now: float,
        waiting: list[Job],
        running: list[RunningView],
        free_procs: int,
    ) -> SuspendDecision:
        decision = SuspendDecision()
        queue = self.priority.sort(waiting, now)
        free = free_procs
        pseudo_releases = [
            (max(view.estimated_finish, now), view.job.procs) for view in running
        ]

        # Phase 1: start in priority order while the head fits.
        while queue and queue[0].procs <= free:
            job = queue.pop(0)
            decision.starts.append(job)
            free -= job.procs
            pseudo_releases.append((now + job.estimate, job.procs))
        if not queue:
            return decision

        # Phase 2: EASY backfilling behind the blocked head.
        head = queue[0]
        shadow, extra = self._shadow(head, now, free, pseudo_releases)
        for job in queue[1:]:
            if job.procs > free:
                continue
            by_shadow = now + job.estimate <= shadow + _EPS
            if by_shadow or job.procs <= extra:
                decision.starts.append(job)
                free -= job.procs
                if not by_shadow:
                    extra -= job.procs

        # Phase 3: selective suspension for the (still blocked) head.
        if now - head.submit_time < self.min_wait:
            return decision
        head_xf = xfactor(head, now)
        victims_pool = sorted(
            (view.job for view in running if view.suspendable),
            key=lambda r: xfactor(r, now),
        )
        chosen: list[Job] = []
        freed = free
        for victim in victims_pool:
            if freed >= head.procs:
                break
            if head_xf >= self.suspension_factor * xfactor(victim, now):
                chosen.append(victim)
                freed += victim.procs
        if freed >= head.procs:
            decision.suspends.extend(chosen)
            decision.starts.append(head)
        return decision

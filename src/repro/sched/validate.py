"""Post-hoc schedule validation.

The simulator already fails fast on inconsistent state, but a *schedule*
(workload + per-job start times) can also come from elsewhere — another
simulator, a production log, a regression fixture.  This module checks
such a schedule against the ground rules of space-shared scheduling and,
optionally, against discipline-specific properties:

* :func:`validate_schedule` — machine-level feasibility: every job runs
  exactly its effective runtime, never before submission, and the machine
  is never oversubscribed at any instant (checked by sweep-line over the
  start/finish events);
* :func:`validate_no_backfill` — strict in-order service: jobs start in
  submission order (the NOBF discipline's defining property);
* :func:`validate_conservative_guarantees` — no job starts later than a
  supplied map of per-job guarantees (for the never-move-later
  conservative variants).

Each validator returns a list of human-readable violation strings (empty
= valid), so callers can assert emptiness in tests or print a report.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.metrics.collector import CompletedJob
from repro.workload.job import Workload

__all__ = [
    "validate_schedule",
    "validate_no_backfill",
    "validate_conservative_guarantees",
]

_EPS = 1e-6


def validate_schedule(
    workload: Workload,
    records: Iterable[CompletedJob],
) -> list[str]:
    """Machine-level feasibility of a completed schedule (see module docs)."""
    violations: list[str] = []
    records = list(records)

    by_id = {job.job_id: job for job in workload}
    seen: set[int] = set()
    for record in records:
        job_id = record.job.job_id
        if job_id not in by_id:
            violations.append(f"job {job_id}: not part of the workload")
            continue
        if job_id in seen:
            violations.append(f"job {job_id}: completed more than once")
            continue
        seen.add(job_id)
        # Check against the workload's authoritative job definition, not
        # the record's embedded copy — a forged record must not be able to
        # launder a different submit time or runtime past the validator.
        job = by_id[job_id]
        if record.start_time < job.submit_time - _EPS:
            violations.append(
                f"job {job_id}: started at {record.start_time} before "
                f"submission at {job.submit_time}"
            )
        expected = record.start_time + job.effective_runtime
        if not math.isclose(record.finish_time, expected, rel_tol=1e-9, abs_tol=1e-3):
            violations.append(
                f"job {job_id}: finish {record.finish_time} != start + "
                f"effective runtime ({expected})"
            )

    missing = set(by_id) - seen
    if missing:
        violations.append(
            f"{len(missing)} jobs never completed (e.g. {sorted(missing)[:5]})"
        )

    # Sweep-line capacity check: +procs at start, -procs at finish;
    # finishes sort before starts at equal timestamps.
    events: list[tuple[float, int, int]] = []
    for record in records:
        events.append((record.start_time, 1, record.job.procs))
        events.append((record.finish_time, 0, record.job.procs))
    events.sort()
    busy = 0
    for time, kind, procs in events:
        busy += procs if kind == 1 else -procs
        if busy > workload.max_procs:
            violations.append(
                f"machine oversubscribed at t={time}: {busy} > {workload.max_procs}"
            )
            break
    return violations


def validate_no_backfill(records: Iterable[CompletedJob]) -> list[str]:
    """Jobs must start in submission order (ties allowed either way)."""
    violations: list[str] = []
    ordered = sorted(records, key=lambda r: (r.job.submit_time, r.job.job_id))
    last_start = -math.inf
    last_id = None
    for record in ordered:
        if record.start_time < last_start - _EPS:
            violations.append(
                f"job {record.job.job_id} (submitted later) started at "
                f"{record.start_time}, before job {last_id} at {last_start}"
            )
        last_start = max(last_start, record.start_time)
        last_id = record.job.job_id
    return violations


def validate_conservative_guarantees(
    records: Iterable[CompletedJob],
    guarantees: Mapping[int, float],
) -> list[str]:
    """No job may start after its recorded start-time guarantee."""
    violations: list[str] = []
    for record in records:
        guarantee = guarantees.get(record.job.job_id)
        if guarantee is None:
            violations.append(f"job {record.job.job_id}: no recorded guarantee")
            continue
        if record.start_time > guarantee + _EPS:
            violations.append(
                f"job {record.job.job_id}: started at {record.start_time}, "
                f"{record.start_time - guarantee:.1f}s after its guarantee "
                f"({guarantee})"
            )
    return violations

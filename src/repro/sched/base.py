"""Scheduler base class: the contract between schedulers and the simulator.

A scheduler owns the idle queue.  The simulator calls :meth:`on_arrival`
when a job is submitted and :meth:`on_finish` when a running job releases
its processors; both return the (ordered) list of jobs to start *right now*.
The simulator performs the actual allocation, so schedulers make decisions
against a read-only view of the machine and their own bookkeeping.

Schedulers never see a job's actual runtime — all planning uses
``job.estimate`` — which is exactly the information asymmetry the paper
studies.

Queue-order maintenance (kernel fast path): policies whose sort keys never
change as time passes (``PriorityPolicy.is_dynamic`` is False — FCFS, SJF,
LJF, narrowest-first) get an *incrementally sorted* queue: arrivals are
placed by binary insertion and :meth:`Scheduler._ordered_queue` is a copy,
not a sort.  Time-varying policies (XFactor, fair-share) re-sort per event
as before.  Keys always end in ``(submit_time, job_id)``, so both paths
produce the identical total order.  ``incremental_queue = False`` restores
the always-re-sort behaviour (used by the reference-kernel benchmarks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right

from repro.cluster.machine import Machine
from repro.errors import SchedulingError
from repro.sched.priority.policies import FCFSPriority, PriorityPolicy
from repro.sched.profile import Profile
from repro.workload.job import Job

__all__ = ["Scheduler", "configure_sequential_claims"]


def configure_sequential_claims(scheduler: "Scheduler") -> "Scheduler":
    """Flip a scheduler instance onto the per-job scalar claim loops.

    The batched and sequential paths are pinned byte-identical by the
    batch-claim property suite; this switch exists so
    ``benchmarks/bench_backfill.py`` can measure the batched kernel
    against the exact pre-batching control flow on the same profile
    implementation.  Call before ``bind()``.
    """
    scheduler.use_batch_claims = False
    return scheduler


class Scheduler(ABC):
    """Base class for all scheduling disciplines.

    Subclasses implement :meth:`on_arrival` and :meth:`on_finish`.  The base
    class provides queue storage, binding to a machine, and bookkeeping that
    the simulator's invariant checks rely on.
    """

    #: Short name for reports ("FCFS-nobf", "conservative", "EASY", ...).
    name: str = "scheduler"

    #: Advance reservations this scheduler plans around (profile-based
    #: disciplines override their constructor to accept them).  The
    #: simulator reads this to install the machine-side capacity blocks.
    advance_reservations: tuple = ()

    #: True only for disciplines whose planning honours a hard future
    #: rectangle; the simulator rejects ARs on anything else.
    supports_advance_reservations: bool = False

    #: Profile implementation used by reservation-planning subclasses.
    #: Tests and benchmarks point instances at
    #: :class:`repro.sched.profile_ref.Profile` to run the frozen
    #: reference kernel (see ``configure_reference_kernel``).
    profile_factory: type[Profile] = Profile

    #: Keep statically-keyed queues sorted by binary insertion instead of
    #: re-sorting every pass.  Flip to False for the reference kernel.
    incremental_queue: bool = True

    #: Route repack/backfill queue scans through the profile's batch
    #: primitives (``claim_many`` / ``min_free_many`` / admission masks)
    #: instead of one scalar kernel call per queued job.  Schedules are
    #: byte-identical either way (pinned by the batch-claim property
    #: suite); flip to False for the sequential baseline that
    #: ``benchmarks/bench_backfill.py`` measures against (see
    #: :func:`configure_sequential_claims`).
    use_batch_claims: bool = True

    def __init__(self, priority: PriorityPolicy | None = None) -> None:
        self.priority: PriorityPolicy = priority or FCFSPriority()
        self.machine: Machine | None = None
        self._queue: list[Job] = []
        #: Sort key of each queued job, parallel to ``_queue`` when the
        #: queue is incrementally sorted (empty otherwise).  Keys are
        #: computed once at enqueue, so placement and removal are pure
        #: bisects instead of per-comparison ``priority.key`` calls.
        self._queue_keys: list[tuple] = []
        self._queue_is_sorted = False  # set at bind(); see module docstring
        self._running: dict[int, tuple[Job, float]] = {}  # id -> (job, start)
        self._request_wakeup = None  # set by bind(); Callable[[float], None]
        self._observe_finish = getattr(self.priority, "observe_finish", None)

    # -- lifecycle ------------------------------------------------------------

    def bind(self, machine: Machine, request_wakeup=None) -> None:
        """Attach the scheduler to a machine before simulation starts.

        ``request_wakeup(time)``, when provided by the simulator, schedules
        a TIMER event so the scheduler is re-invoked (via :meth:`on_wakeup`)
        at ``time`` even if no arrival or completion falls on it.  Schedulers
        whose decisions only ever take effect at job events can ignore it.
        """
        self.machine = machine
        self._request_wakeup = request_wakeup
        self._queue.clear()
        self._queue_keys.clear()
        self._queue_is_sorted = self.incremental_queue and not self.priority.is_dynamic
        self._running.clear()
        # Stateful priority policies (e.g. fair-share usage tracking) are
        # reset per run so a scheduler instance can be reused.
        if hasattr(self.priority, "reset"):
            self.priority.reset()
        self._observe_finish = getattr(self.priority, "observe_finish", None)
        self.reset()

    def reset(self) -> None:
        """Hook for subclasses to clear their own state on bind()."""

    def rebind(self, machine: Machine, request_wakeup=None) -> None:
        """Attach to a machine *without* clearing state.

        Used when resuming a simulation from a snapshot: the scheduler
        copy produced by :meth:`fork` already carries the mid-run queue
        and planning state, and :meth:`bind`'s reset would destroy it.
        """
        self.machine = machine
        self._request_wakeup = request_wakeup
        self._queue_is_sorted = self.incremental_queue and not self.priority.is_dynamic
        self._observe_finish = getattr(self.priority, "observe_finish", None)

    def fork(self) -> "Scheduler":
        """Independent copy of the full mid-run scheduler state.

        The copy is detached (no machine, no wakeup callback) until
        :meth:`rebind` attaches it; the original keeps running
        unaffected.  The base class copies the shared bookkeeping — the
        idle queue, the running table, and the priority policy (via
        ``priority.fork()``, a self-return for stateless policies) — then
        hands the copy to :meth:`_fork_into` for the subclass's own
        state.  Every concrete discipline must implement
        :meth:`_fork_into` (``pass`` when there is nothing beyond the
        base state) so that new state added later fails loudly instead
        of being silently shared.
        """
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.priority = self.priority.fork()
        clone.machine = None
        clone._request_wakeup = None
        clone._queue = list(self._queue)
        clone._queue_keys = list(self._queue_keys)
        clone._running = dict(self._running)
        # Rebound to the *forked* policy — the shallow copy above would
        # otherwise leave a stateful policy's method bound to the original.
        clone._observe_finish = getattr(clone.priority, "observe_finish", None)
        self._fork_into(clone)
        return clone

    def _fork_into(self, clone: "Scheduler") -> None:
        """Copy subclass-owned mutable state onto ``clone``.

        ``clone`` starts as a shallow copy of ``self`` (plus deep-copied
        base bookkeeping); implementations must replace every mutable
        container and planning structure they own.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement _fork_into(); "
            "checkpoint/fork needs every discipline to copy its own state"
        )

    def request_wakeup(self, time: float) -> None:
        """Ask the simulator for a TIMER event at ``time`` (no-op unbound)."""
        if self._request_wakeup is not None:
            self._request_wakeup(time)

    def on_wakeup(self, now: float) -> list[Job]:
        """Handle a requested TIMER event; return jobs to start now."""
        return []

    def cancel(self, job: Job, now: float) -> None:
        """Withdraw a *queued* job.  Withdraw-only — NO scheduling pass.

        Used by grid metaschedulers that submit a job to several sites and
        cancel the losers once one site starts it.  Subclasses holding
        per-job planning state (reservations, deadlines) must override and
        clean it up.  Deliberately side-effect-free beyond state cleanup:
        the caller invokes :meth:`poke` once all simultaneous withdrawals
        are done, so a cancellation cascade can never start a job whose
        replica was already committed elsewhere.
        """
        self._dequeue(job)

    def poke(self, now: float) -> list[Job]:
        """Run a scheduling pass outside the normal event hooks.

        Grid engines call this after a batch of :meth:`cancel`
        withdrawals; a freed slot may let queued jobs start.  The base
        implementation starts nothing.
        """
        return []

    # -- simulator-facing API ---------------------------------------------------

    @abstractmethod
    def on_arrival(self, job: Job, now: float) -> list[Job]:
        """Handle a submission; return jobs to start now (ordered)."""

    @abstractmethod
    def on_finish(self, job: Job, now: float) -> list[Job]:
        """Handle a completion; return jobs to start now (ordered)."""

    def notify_started(self, job: Job, now: float) -> None:
        """Called by the simulator after it allocates a job this scheduler
        returned.  Subclasses needing extra bookkeeping must call super()."""
        self._running[job.job_id] = (job, now)

    def notify_finished(self, job: Job, now: float) -> None:
        """Called by the simulator after it releases a finished job."""
        if self._running.pop(job.job_id, None) is None:
            raise SchedulingError(
                f"{self.name}: finish notification for job {job.job_id} "
                "which is not running"
            )
        # Feed stateful priority policies (fair-share usage accounting).
        # The lookup is cached at bind/fork time; a per-finish getattr was
        # measurable on the hot loop.
        observe = self._observe_finish
        if observe is not None:
            observe(job, now)

    # -- shared queue helpers ---------------------------------------------------

    @property
    def queued_jobs(self) -> tuple[Job, ...]:
        """Snapshot of the idle queue (unspecified order)."""
        return tuple(self._queue)

    @property
    def running_jobs(self) -> tuple[tuple[Job, float], ...]:
        """Snapshot of running jobs as (job, start_time) pairs."""
        return tuple(self._running.values())

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _enqueue(self, job: Job) -> None:
        if self._queue_is_sorted:
            # Static keys ignore ``now``; 0.0 is an arbitrary stand-in.
            key = self.priority.key(job, 0.0)
            keys = self._queue_keys
            if not keys or key >= keys[-1]:
                # Dominant case: keys end in (submit_time, job_id) and
                # arrivals are delivered in submit order, so FCFS-like
                # policies always append — O(1) instead of a bisect plus
                # a mid-list insert's memmove.
                keys.append(key)
                self._queue.append(job)
            else:
                index = bisect_right(keys, key)
                keys.insert(index, key)
                self._queue.insert(index, job)
        else:
            self._queue.append(job)

    def _static_key(self, job: Job) -> tuple:
        return self.priority.key(job, 0.0)

    def _dequeue(self, job: Job) -> None:
        if self._queue_is_sorted:
            # Keys end in (submit_time, job_id), so each job's key is
            # unique and a bisect lands exactly on it if present.
            keys = self._queue_keys
            index = bisect_left(keys, self.priority.key(job, 0.0))
            if index < len(keys) and self._queue[index] == job:
                del keys[index]
                del self._queue[index]
                return
        else:
            try:
                self._queue.remove(job)
                return
            except ValueError:
                pass
        raise SchedulingError(
            f"{self.name}: job {job.job_id} is not in the idle queue"
        ) from None

    def _pop_queue_prefix(self, count: int) -> list[Job]:
        """Remove and return the first ``count`` jobs of the sorted queue.

        Fast path for disciplines that consume the queue head-first (a
        single slice-delete instead of ``count`` individual removals).
        Only meaningful while ``_queue_is_sorted`` holds.
        """
        queue = self._queue
        taken = queue[:count]
        del queue[:count]
        del self._queue_keys[:count]
        return taken

    def _ordered_queue(self, now: float) -> list[Job]:
        """The idle queue in priority order at time ``now``."""
        if self._queue_is_sorted:
            return list(self._queue)
        return self.priority.sort(self._queue, now)

    def _machine(self) -> Machine:
        if self.machine is None:
            raise SchedulingError(f"{self.name}: scheduler is not bound to a machine")
        return self.machine

    def _machine_fits(self, job: Job, committed_procs: int = 0) -> bool:
        """True if the machine *physically* has processors for ``job`` now.

        Planning profiles are built from estimated finishes and merge
        breakpoints within a float tolerance, so a plan can declare a job
        due an instant before the releasing completion has actually been
        processed.  Profile-based schedulers must re-check the machine (less
        ``committed_procs`` already promised to other starts in the same
        pass) before returning a job to the simulator; a deferred job is
        reconsidered at the very next finish event, so the delay is bounded
        by the tolerance itself.
        """
        return self._machine().free_procs - committed_procs >= job.procs

    def estimated_finish(self, job_id: int) -> float:
        """Estimated completion time of a running job (start + estimate)."""
        try:
            job, start = self._running[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id} is not running") from None
        return start + job.estimate

    def describe(self) -> str:
        """Human-readable identity, e.g. ``EASY(SJF)``."""
        return f"{self.name}({self.priority.name})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.describe()} queue={len(self._queue)} "
            f"running={len(self._running)}>"
        )

"""Processor-availability profile: free processors as a step function of time.

This is the "2D chart" of the paper's Section 2: time on one axis,
processors on the other, each running job or reservation occupying a
rectangle.  The profile stores the *free-processor* step function as a
sorted list of breakpoints ``(time, free)``, where ``free`` holds on
``[time_i, time_{i+1})`` and the final breakpoint extends to infinity.

Operations:

* :meth:`find_start` — earliest time a ``procs x duration`` rectangle fits
  (the core primitive of every backfilling scheduler);
* :meth:`reserve` / :meth:`release` — carve a rectangle out of / back into
  the free function;
* :meth:`advance` — garbage-collect breakpoints behind the simulation clock;
* :meth:`rebuild_into` — reset and bulk-load a running set in one endpoint
  sweep, reusing the existing arrays (the repack fast path).

All mutations validate that free counts stay within ``[0, total_procs]``,
so double-reservations and mismatched releases fail fast
(:class:`~repro.errors.ProfileError`).

Performance contract (see DESIGN.md "Performance"): breakpoints live in
capacity-managed numpy arrays so the kernel's inner loops — the
feasibility sweep of :meth:`find_start`, the window validation and delta
application of :meth:`_apply`, the window minimum of :meth:`min_free` —
run vectorized instead of one Python iteration per segment.  The arrays
are kept *coalesced* (no two adjacent segments share a free count) as a
strict invariant; because :meth:`_apply` adds one delta to a contiguous
run of segments, only the two window edges can ever newly violate it, so
mutations repair locally in O(1) instead of re-scanning.  The slow
pre-optimization implementation is frozen verbatim in
:mod:`repro.sched.profile_ref`; every optimization here is gated on
byte-identical schedules against it
(``tests/properties/test_prop_kernel_equivalence.py``).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ProfileError

__all__ = ["Profile"]

#: Tolerance for comparing reservation timestamps.
_EPS = 1e-9


class Profile:
    """Free-processor step function over ``[origin, +inf)``."""

    __slots__ = ("total_procs", "_times", "_free", "_n")

    #: Initial breakpoint capacity; doubled on demand.
    _INIT_CAPACITY = 64

    def __init__(self, total_procs: int, origin: float = 0.0) -> None:
        if total_procs <= 0:
            raise ProfileError(f"profile needs > 0 processors, got {total_procs}")
        if not math.isfinite(origin):
            raise ProfileError(f"profile origin must be finite, got {origin}")
        self.total_procs = total_procs
        # Capacity-managed parallel arrays: breakpoint times and the free
        # count from each breakpoint until the next; only the first ``_n``
        # entries are live.  Invariants: times strictly increasing,
        # times[0] is the origin, 0 <= free <= total_procs, and no two
        # adjacent free counts are equal (coalesced).
        self._times = np.empty(self._INIT_CAPACITY, dtype=np.float64)
        self._free = np.empty(self._INIT_CAPACITY, dtype=np.int64)
        self._times[0] = origin
        self._free[0] = total_procs
        self._n = 1

    # -- storage management ---------------------------------------------------

    def _reserve_capacity(self, need: int) -> None:
        """Grow the backing arrays to hold at least ``need`` breakpoints."""
        capacity = len(self._times)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        times = np.empty(capacity, dtype=np.float64)
        free = np.empty(capacity, dtype=np.int64)
        times[: self._n] = self._times[: self._n]
        free[: self._n] = self._free[: self._n]
        self._times = times
        self._free = free

    def _insert(self, index: int, time: float, count: int) -> None:
        """Insert a breakpoint at ``index`` (C-speed shift, no Python loop)."""
        n = self._n
        self._reserve_capacity(n + 1)
        # numpy guarantees overlapping slice assignment copies-then-writes.
        self._times[index + 1 : n + 1] = self._times[index:n]
        self._free[index + 1 : n + 1] = self._free[index:n]
        self._times[index] = time
        self._free[index] = count
        self._n = n + 1

    def _delete(self, index: int) -> None:
        """Drop the breakpoint at ``index`` (segment merges into its left)."""
        n = self._n
        self._times[index : n - 1] = self._times[index + 1 : n]
        self._free[index : n - 1] = self._free[index + 1 : n]
        self._n = n - 1

    # -- queries --------------------------------------------------------------

    @property
    def origin(self) -> float:
        """Left edge of the profile (the current simulation clock)."""
        return float(self._times[0])

    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (must be >= origin)."""
        times = self._times[: self._n]
        if time < times[0] - _EPS:
            raise ProfileError(
                f"query at {time} precedes profile origin {times[0]}"
            )
        index = int(times.searchsorted(time + _EPS, side="right")) - 1
        return int(self._free[max(index, 0)])

    def min_free(self, start: float, duration: float) -> int:
        """Minimum free processors over the window ``[start, start+duration)``."""
        if duration <= 0:
            return self.free_at(start)
        end = start + duration
        times = self._times[: self._n]
        first = max(int(times.searchsorted(start + _EPS, side="right")) - 1, 0)
        stop = int(times.searchsorted(end - _EPS, side="left"))
        if stop <= first:
            return self.total_procs
        return int(self._free[first:stop].min())

    def breakpoints(self) -> list[tuple[float, int]]:
        """Copy of the step function as ``(time, free)`` pairs."""
        return list(
            zip(self._times[: self._n].tolist(), self._free[: self._n].tolist())
        )

    # -- core primitive ----------------------------------------------------------

    def find_start(self, procs: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``procs`` free over ``[t, t+duration)``.

        Candidate anchors are ``earliest`` itself and every later breakpoint
        (free counts only change at breakpoints, so the optimum is always one
        of these).  The feasibility mask and its run boundaries are computed
        vectorized, then each maximal feasible run is checked for covering
        ``duration`` — O(breakpoints) total work with numpy constants (this
        is the inner loop of every reservation-based scheduler; see
        benchmarks/bench_kernel.py).  Always succeeds: the profile ends in
        a final infinite segment, so any rectangle with ``procs <= total``
        fits once all reservations end — unless the tail itself is
        over-reserved, which is a usage bug.
        """
        if procs <= 0 or procs > self.total_procs:
            raise ProfileError(
                f"cannot place {procs} procs on a {self.total_procs}-proc profile"
            )
        if duration <= 0:
            raise ProfileError(f"duration must be > 0, got {duration}")
        n = self._n
        times = self._times[:n]
        if earliest < times[0]:
            earliest = float(times[0])

        # Exact searchsorted, NOT the +_EPS-fudged one the other queries
        # use: with the fudge, a breakpoint in ``(earliest, earliest +
        # _EPS]`` makes the sweep skip the segment that actually contains
        # ``earliest`` — and if that segment is feasible, the job is
        # delayed past a start the profile can support.  The exact form
        # never anchors inside an infeasible sliver either: run starts stay
        # clamped to segments whose free count was checked.  (``earliest >=
        # times[0]`` after the clamp above, so ``index >= 0``.)
        index = int(times.searchsorted(earliest, side="right")) - 1
        feasible = self._free[index:n] >= procs

        # Maximal feasible runs, via the flip positions of the mask (direct
        # ndarray methods only — this is the hottest loop in the kernel and
        # numpy's module-level wrappers cost more than the work itself).
        # ``flips[k]`` is the first relative segment whose feasibility
        # differs from its predecessor; runs of True therefore start at
        # alternating flips (offset by whether segment 0 is feasible) and
        # end at the next flip.  A run with no closing flip reaches the
        # final segment and extends to infinity, so it always covers.
        flips = (feasible[1:] != feasible[:-1]).nonzero()[0] + 1
        if feasible[0]:
            # The run containing ``earliest`` is anchored at ``earliest``
            # itself, not at a breakpoint.
            if flips.size == 0:
                return earliest
            if float(times[index + int(flips[0])]) >= earliest + duration - _EPS:
                return earliest
            starts = flips[1::2]
            ends = flips[2::2]
        else:
            starts = flips[0::2]
            ends = flips[1::2]
        # Later runs begin strictly after ``earliest`` (their first segment
        # starts at times[index + s] with s >= 1), so no clamping needed.
        slist = starts.tolist()
        elist = ends.tolist()
        for k in range(len(elist)):
            begin = float(times[index + slist[k]])
            if float(times[index + elist[k]]) >= begin + duration - _EPS:
                return begin
        if len(slist) > len(elist):
            return float(times[index + slist[-1]])
        raise ProfileError(
            f"no feasible start for {procs} procs x {duration}s — "
            "the profile's tail is over-reserved"
        )

    def claim(self, procs: int, duration: float, earliest: float) -> float:
        """Fused :meth:`find_start` + :meth:`reserve`; returns the start.

        Produces exactly the state and return value of the two-call
        sequence, but in one pass: the feasibility sweep already proves
        every segment in the winning window holds ``procs`` free, so the
        reserve-side validation is redundant, and the window's start
        breakpoint is known from the sweep (either a breakpoint the run
        began at, or ``earliest`` resolved against its enclosing segment
        with :meth:`_ensure_breakpoint`'s exact tolerance rules).  This is
        the per-job placement step of every reservation repack loop —
        the single hottest call in the kernel.
        """
        if procs <= 0 or procs > self.total_procs:
            raise ProfileError(
                f"cannot place {procs} procs on a {self.total_procs}-proc profile"
            )
        if duration <= 0:
            raise ProfileError(f"duration must be > 0, got {duration}")
        n = self._n
        times = self._times[:n]
        if earliest < times[0]:
            earliest = float(times[0])
        index = int(times.searchsorted(earliest, side="right")) - 1
        feasible = self._free[index:n] >= procs
        flips = (feasible[1:] != feasible[:-1]).nonzero()[0].tolist()

        # Locate the winning run (same sweep as find_start; flip k sits at
        # absolute breakpoint ``index + flips[k] + 1``).  ``bp`` is the
        # absolute breakpoint index the window starts at, or -1 when the
        # window is anchored at ``earliest`` inside its segment.
        begin = 0.0
        bp = -2  # not yet found
        if feasible[0]:
            if not flips or float(
                times[index + 1 + flips[0]]
            ) >= earliest + duration - _EPS:
                begin = earliest
                bp = -1
            starts = flips[1::2]
            ends = flips[2::2]
        else:
            starts = flips[0::2]
            ends = flips[1::2]
        if bp == -2:
            for k in range(len(ends)):
                s = index + 1 + starts[k]
                anchor = float(times[s])
                if float(times[index + 1 + ends[k]]) >= anchor + duration - _EPS:
                    begin = anchor
                    bp = s
                    break
            else:
                if len(starts) > len(ends):
                    s = index + 1 + starts[-1]
                    begin = float(times[s])  # final run: infinite tail
                    bp = s
                else:
                    raise ProfileError(
                        f"no feasible start for {procs} procs x {duration}s — "
                        "the profile's tail is over-reserved"
                    )

        # Apply the reservation without re-validating.  Resolve the start
        # breakpoint scalar-wise: breakpoints are pairwise > _EPS apart, so
        # when the run begins at breakpoint ``bp`` the tolerance search
        # could only ever find ``bp`` itself; when it begins at
        # ``earliest``, the enclosing segment's edges are the only
        # candidates within tolerance.
        if bp >= 0:
            first = bp
        else:
            nxt = index + 1
            if nxt < n and float(times[nxt]) - begin <= _EPS:
                first = nxt
            elif begin - float(times[index]) <= _EPS:
                first = index
            else:
                self._insert(index + 1, begin, int(self._free[index]))
                first = index + 1
        last = self._ensure_breakpoint(begin + duration)
        self._free[first:last] -= procs
        if self._free[last] == self._free[last - 1]:
            self._delete(last)
        if first > 0 and self._free[first] == self._free[first - 1]:
            self._delete(first)
        return begin

    # -- mutations ------------------------------------------------------------------

    def _ensure_breakpoint(self, time: float) -> int:
        """Make ``time`` a breakpoint (splitting a segment) and return its index.

        Exact search plus a two-sided tolerance snap.  Locating the
        candidate via ``searchsorted(time + _EPS)`` is wrong here:
        ``time + _EPS`` can round up onto an edge whose true distance
        from ``time`` exceeds ``_EPS``, so the snap test rejects it yet
        the insertion index lands *past* that edge — an out-of-order
        corruption of the breakpoint array.
        """
        times = self._times[: self._n]
        pos = int(times.searchsorted(time, side="left"))
        if pos < self._n and abs(float(times[pos]) - time) <= _EPS:
            return pos
        if pos > 0 and abs(float(times[pos - 1]) - time) <= _EPS:
            return pos - 1
        if time < float(times[0]) - _EPS:
            raise ProfileError(
                f"breakpoint {time} precedes profile origin {times[0]}"
            )
        self._insert(pos, time, int(self._free[max(pos - 1, 0)]))
        return pos

    def _apply(self, delta: int, start: float, end: float) -> None:
        if end <= start + _EPS:
            raise ProfileError(f"empty reservation window [{start}, {end})")
        # Validate against the existing segments BEFORE touching the
        # representation, so a failed apply leaves the profile bit-identical.
        # Only one bound can be violated per sign of delta: a reserve
        # (delta < 0) can only underflow the window minimum, a release only
        # overflow the maximum — so a single vectorized reduction suffices.
        times = self._times[: self._n]
        first_seg = max(int(times.searchsorted(start + _EPS, side="right")) - 1, 0)
        stop = int(times.searchsorted(end - _EPS, side="left"))
        if stop > first_seg:
            window = self._free[first_seg:stop]
            if delta < 0:
                worst = int(window.min()) + delta
                if worst < 0:
                    raise ProfileError(
                        f"free count would become {worst} (valid range "
                        f"[0, {self.total_procs}]) on [{start}, {end})"
                    )
            else:
                worst = int(window.max()) + delta
                if worst > self.total_procs:
                    raise ProfileError(
                        f"free count would become {worst} (valid range "
                        f"[0, {self.total_procs}]) on [{start}, {end})"
                    )
        first = self._ensure_breakpoint(start)
        last = self._ensure_breakpoint(end)
        self._free[first:last] += delta
        # Localized coalescing: every interior adjacent pair moved by the
        # same delta, so (by the coalesced invariant) it stays unequal; only
        # the two window edges can merge.  Repair ``last`` first so
        # ``first``'s index is still valid.
        if self._free[last] == self._free[last - 1]:
            self._delete(last)
        if first > 0 and self._free[first] == self._free[first - 1]:
            self._delete(first)

    def reserve(self, procs: int, start: float, duration: float) -> None:
        """Subtract ``procs`` from the free function on ``[start, start+duration)``."""
        if procs <= 0:
            raise ProfileError(f"reserve needs procs > 0, got {procs}")
        self._apply(-procs, start, start + duration)

    def release(self, procs: int, start: float, duration: float) -> None:
        """Add ``procs`` back on ``[start, start+duration)`` (undo a reserve)."""
        if procs <= 0:
            raise ProfileError(f"release needs procs > 0, got {procs}")
        self._apply(procs, start, start + duration)

    def advance(self, time: float) -> None:
        """Move the origin forward to ``time``, dropping stale breakpoints.

        The free count in force at ``time`` becomes the new first segment.
        No coalescing is needed: surviving adjacent pairs were adjacent
        (and hence unequal) before the prefix was dropped.
        """
        n = self._n
        times = self._times[:n]
        if time < times[0] - _EPS:
            raise ProfileError(
                f"cannot advance profile backwards ({times[0]} -> {time})"
            )
        index = int(times.searchsorted(time + _EPS, side="right")) - 1
        if index <= 0:
            if abs(times[0] - time) > _EPS and time > times[0]:
                self._times[0] = time
            return
        self._times[0 : n - index] = self._times[index:n]
        self._free[0 : n - index] = self._free[index:n]
        self._times[0] = time
        self._n = n - index

    def fork(self) -> "Profile":
        """Independent copy for scheduler checkpointing.

        Two array copies (the live prefix travels with its spare
        capacity) — no re-validation, no Python per-segment loop.
        """
        dup = Profile.__new__(Profile)
        dup.total_procs = self.total_procs
        dup._times = self._times.copy()
        dup._free = self._free.copy()
        dup._n = self._n
        return dup

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_running_jobs(
        cls,
        total_procs: int,
        now: float,
        running: Iterable[tuple[int, float]],
    ) -> "Profile":
        """Build a profile from ``(procs, estimated_finish)`` of running jobs.

        Jobs whose estimated finish has already passed (defensive: cannot
        happen while runtimes are capped at estimates) occupy a
        microsecond-length slot so the present instant still shows them
        busy.  Delegates to :meth:`rebuild_into` — one O(R log R) endpoint
        sweep rather than R sequential reserve+coalesce passes.
        """
        profile = cls(total_procs, origin=now)
        profile.rebuild_into(now, running)
        return profile

    def rebuild_into(self, now: float, running: Iterable[tuple[int, float]]) -> None:
        """Reset to origin ``now`` and bulk-load ``running`` occupancy in place.

        Reuses the existing breakpoint arrays, so repacking schedulers
        (conservative's ``repack`` compression, depth, selective, slack)
        can rebuild their plan every event without allocating a fresh
        profile.  All running jobs occupy ``[now, horizon_i)``, so the free
        function is ``total - sum(procs of jobs with horizon > t)``: one
        sort of the horizons and a single sweep accumulating releases
        yields the exact step function sequential reserves would build.
        """
        if not math.isfinite(now):
            raise ProfileError(f"profile origin must be finite, got {now}")
        floor = now + 1e-6
        horizons: list[tuple[float, int]] = []
        busy = 0
        for procs, finish in running:
            if procs <= 0:
                raise ProfileError(f"reserve needs procs > 0, got {procs}")
            busy += procs
            horizons.append((finish if finish > floor else floor, procs))
        if busy > self.total_procs:
            raise ProfileError(
                f"free count would become {self.total_procs - busy} (valid "
                f"range [0, {self.total_procs}]) on [{now}, ...)"
            )
        horizons.sort()
        self._reserve_capacity(len(horizons) + 1)
        times, free = self._times, self._free
        times[0] = now
        level = self.total_procs - busy
        free[0] = level
        n = 1
        for horizon, procs in horizons:
            level += procs
            if horizon - times[n - 1] <= _EPS:
                # Endpoint merges with the previous breakpoint exactly the
                # way _ensure_breakpoint's tolerance would.
                free[n - 1] = level
            else:
                times[n] = horizon
                free[n] = level
                n += 1
        self._n = n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(
            f"{t:.6g}:{f}"
            for t, f in zip(self._times[: self._n], self._free[: self._n])
        )
        return f"Profile(total={self.total_procs}, steps=[{steps}])"

"""Processor-availability profile: free processors as a step function of time.

This is the "2D chart" of the paper's Section 2: time on one axis,
processors on the other, each running job or reservation occupying a
rectangle.  The profile stores the *free-processor* step function as a
sorted list of breakpoints ``(time, free)``, where ``free`` holds on
``[time_i, time_{i+1})`` and the final breakpoint extends to infinity.

Operations:

* :meth:`find_start` — earliest time a ``procs x duration`` rectangle fits
  (the core primitive of every backfilling scheduler);
* :meth:`reserve` / :meth:`release` — carve a rectangle out of / back into
  the free function;
* :meth:`advance` — garbage-collect breakpoints behind the simulation clock;
* :meth:`rebuild_into` — reset and bulk-load a running set in one endpoint
  sweep, reusing the existing arrays (the repack fast path).

All mutations validate that free counts stay within ``[0, total_procs]``,
so double-reservations and mismatched releases fail fast
(:class:`~repro.errors.ProfileError`).

Performance contract (see DESIGN.md "Performance"): breakpoints live in
capacity-managed numpy arrays so the kernel's inner loops — the
feasibility sweep of :meth:`find_start`, the window validation and delta
application of :meth:`_apply`, the window minimum of :meth:`min_free` —
run vectorized instead of one Python iteration per segment.  The arrays
are kept *coalesced* (no two adjacent segments share a free count) as a
strict invariant; because :meth:`_apply` adds one delta to a contiguous
run of segments, only the two window edges can ever newly violate it, so
mutations repair locally in O(1) instead of re-scanning.  The slow
pre-optimization implementation is frozen verbatim in
:mod:`repro.sched.profile_ref`; every optimization here is gated on
byte-identical schedules against it
(``tests/properties/test_prop_kernel_equivalence.py``).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ProfileError

__all__ = [
    "Profile",
    "fits_mask",
    "finishes_by_mask",
    "fitting_prefix_count",
]

#: Tolerance for comparing reservation timestamps.
_EPS = 1e-9


# -- batch admission helpers (no profile state needed) ---------------------------
#
# The backfill disciplines that plan without an availability profile (EASY's
# shadow/extra pair, nobf's in-order prefix) still scan the queue one job at
# a time.  These helpers evaluate the whole queue in one vectorized pass;
# because the quantities they test against only shrink during a scheduling
# pass (free processors and extra processors are only ever decremented as
# jobs start), a False verdict computed against the *initial* value is
# definitive and the job can be skipped with no per-job work at all.


def fits_mask(procs, available: int):
    """``procs[i] <= available`` for every candidate, as a bool ndarray."""
    return np.asarray(procs, dtype=np.int64) <= available


def finishes_by_mask(now: float, durations, deadline: float):
    """``now + durations[i] <= deadline + _EPS`` for every candidate.

    The tolerance is the kernel epsilon — the same comparison EASY's
    scalar backfill test uses (easy.py shares ``_EPS = 1e-9``).
    """
    return np.asarray(durations, dtype=np.float64) + now <= deadline + _EPS


def fitting_prefix_count(procs, available: int) -> int:
    """Length of the maximal prefix with ``sum(procs[:k]) <= available``.

    The vectorized form of nobf's head-blocks-everything start loop:
    processor demands are all positive, so the cumulative sum is strictly
    increasing and the prefix boundary is a single ``searchsorted``.
    """
    demands = np.asarray(procs, dtype=np.int64)
    if demands.size == 0:
        return 0
    return int(np.cumsum(demands).searchsorted(available, side="right"))


class Profile:
    """Free-processor step function over ``[origin, +inf)``."""

    __slots__ = ("total_procs", "_times", "_free", "_n")

    #: Initial breakpoint capacity; doubled on demand.
    _INIT_CAPACITY = 64

    def __init__(self, total_procs: int, origin: float = 0.0) -> None:
        if total_procs <= 0:
            raise ProfileError(f"profile needs > 0 processors, got {total_procs}")
        if not math.isfinite(origin):
            raise ProfileError(f"profile origin must be finite, got {origin}")
        self.total_procs = total_procs
        # Capacity-managed parallel arrays: breakpoint times and the free
        # count from each breakpoint until the next; only the first ``_n``
        # entries are live.  Invariants: times strictly increasing,
        # times[0] is the origin, 0 <= free <= total_procs, and no two
        # adjacent free counts are equal (coalesced).
        self._times = np.empty(self._INIT_CAPACITY, dtype=np.float64)
        self._free = np.empty(self._INIT_CAPACITY, dtype=np.int64)
        self._times[0] = origin
        self._free[0] = total_procs
        self._n = 1

    # -- storage management ---------------------------------------------------

    def _reserve_capacity(self, need: int) -> None:
        """Grow the backing arrays to hold at least ``need`` breakpoints."""
        capacity = len(self._times)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        times = np.empty(capacity, dtype=np.float64)
        free = np.empty(capacity, dtype=np.int64)
        times[: self._n] = self._times[: self._n]
        free[: self._n] = self._free[: self._n]
        self._times = times
        self._free = free

    def _insert(self, index: int, time: float, count: int) -> None:
        """Insert a breakpoint at ``index`` (C-speed shift, no Python loop)."""
        n = self._n
        self._reserve_capacity(n + 1)
        # numpy guarantees overlapping slice assignment copies-then-writes.
        self._times[index + 1 : n + 1] = self._times[index:n]
        self._free[index + 1 : n + 1] = self._free[index:n]
        self._times[index] = time
        self._free[index] = count
        self._n = n + 1

    def _delete(self, index: int) -> None:
        """Drop the breakpoint at ``index`` (segment merges into its left)."""
        n = self._n
        self._times[index : n - 1] = self._times[index + 1 : n]
        self._free[index : n - 1] = self._free[index + 1 : n]
        self._n = n - 1

    # -- queries --------------------------------------------------------------

    @property
    def origin(self) -> float:
        """Left edge of the profile (the current simulation clock)."""
        return float(self._times[0])

    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (must be >= origin)."""
        times = self._times[: self._n]
        if time < times[0] - _EPS:
            raise ProfileError(
                f"query at {time} precedes profile origin {times[0]}"
            )
        index = int(times.searchsorted(time + _EPS, side="right")) - 1
        return int(self._free[max(index, 0)])

    def min_free(self, start: float, duration: float) -> int:
        """Minimum free processors over the window ``[start, start+duration)``."""
        if duration <= 0:
            return self.free_at(start)
        end = start + duration
        times = self._times[: self._n]
        first = max(int(times.searchsorted(start + _EPS, side="right")) - 1, 0)
        stop = int(times.searchsorted(end - _EPS, side="left"))
        if stop <= first:
            return self.total_procs
        return int(self._free[first:stop].min())

    def breakpoints(self) -> list[tuple[float, int]]:
        """Copy of the step function as ``(time, free)`` pairs."""
        return list(
            zip(self._times[: self._n].tolist(), self._free[: self._n].tolist())
        )

    # -- core primitive ----------------------------------------------------------

    def find_start(self, procs: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``procs`` free over ``[t, t+duration)``.

        Candidate anchors are ``earliest`` itself and every later breakpoint
        (free counts only change at breakpoints, so the optimum is always one
        of these).  The feasibility mask and its run boundaries are computed
        vectorized, then each maximal feasible run is checked for covering
        ``duration`` — O(breakpoints) total work with numpy constants (this
        is the inner loop of every reservation-based scheduler; see
        benchmarks/bench_kernel.py).  Always succeeds: the profile ends in
        a final infinite segment, so any rectangle with ``procs <= total``
        fits once all reservations end — unless the tail itself is
        over-reserved, which is a usage bug.
        """
        if procs <= 0 or procs > self.total_procs:
            raise ProfileError(
                f"cannot place {procs} procs on a {self.total_procs}-proc profile"
            )
        if duration <= 0:
            raise ProfileError(f"duration must be > 0, got {duration}")
        n = self._n
        times = self._times[:n]
        if earliest < times[0]:
            earliest = float(times[0])

        # Exact searchsorted, NOT the +_EPS-fudged one the other queries
        # use: with the fudge, a breakpoint in ``(earliest, earliest +
        # _EPS]`` makes the sweep skip the segment that actually contains
        # ``earliest`` — and if that segment is feasible, the job is
        # delayed past a start the profile can support.  The exact form
        # never anchors inside an infeasible sliver either: run starts stay
        # clamped to segments whose free count was checked.  (``earliest >=
        # times[0]`` after the clamp above, so ``index >= 0``.)
        index = int(times.searchsorted(earliest, side="right")) - 1
        feasible = self._free[index:n] >= procs

        # Maximal feasible runs, via the flip positions of the mask (direct
        # ndarray methods only — this is the hottest loop in the kernel and
        # numpy's module-level wrappers cost more than the work itself).
        # ``flips[k]`` is the first relative segment whose feasibility
        # differs from its predecessor; runs of True therefore start at
        # alternating flips (offset by whether segment 0 is feasible) and
        # end at the next flip.  A run with no closing flip reaches the
        # final segment and extends to infinity, so it always covers.
        flips = (feasible[1:] != feasible[:-1]).nonzero()[0] + 1
        if feasible[0]:
            # The run containing ``earliest`` is anchored at ``earliest``
            # itself, not at a breakpoint.
            if flips.size == 0:
                return earliest
            if float(times[index + int(flips[0])]) >= earliest + duration - _EPS:
                return earliest
            starts = flips[1::2]
            ends = flips[2::2]
        else:
            starts = flips[0::2]
            ends = flips[1::2]
        # Later runs begin strictly after ``earliest`` (their first segment
        # starts at times[index + s] with s >= 1), so no clamping needed.
        slist = starts.tolist()
        elist = ends.tolist()
        for k in range(len(elist)):
            begin = float(times[index + slist[k]])
            if float(times[index + elist[k]]) >= begin + duration - _EPS:
                return begin
        if len(slist) > len(elist):
            return float(times[index + slist[-1]])
        raise ProfileError(
            f"no feasible start for {procs} procs x {duration}s — "
            "the profile's tail is over-reserved"
        )

    def claim(self, procs: int, duration: float, earliest: float) -> float:
        """Fused :meth:`find_start` + :meth:`reserve`; returns the start.

        Produces exactly the state and return value of the two-call
        sequence, but in one pass: the feasibility sweep already proves
        every segment in the winning window holds ``procs`` free, so the
        reserve-side validation is redundant, and the window's start
        breakpoint is known from the sweep (either a breakpoint the run
        began at, or ``earliest`` resolved against its enclosing segment
        with :meth:`_ensure_breakpoint`'s exact tolerance rules).  This is
        the per-job placement step of every reservation repack loop —
        the single hottest call in the kernel.
        """
        if procs <= 0 or procs > self.total_procs:
            raise ProfileError(
                f"cannot place {procs} procs on a {self.total_procs}-proc profile"
            )
        if duration <= 0:
            raise ProfileError(f"duration must be > 0, got {duration}")
        n = self._n
        times = self._times[:n]
        if earliest < times[0]:
            earliest = float(times[0])
        index = int(times.searchsorted(earliest, side="right")) - 1
        feasible = self._free[index:n] >= procs
        flips = (feasible[1:] != feasible[:-1]).nonzero()[0].tolist()

        # Locate the winning run (same sweep as find_start; flip k sits at
        # absolute breakpoint ``index + flips[k] + 1``).  ``bp`` is the
        # absolute breakpoint index the window starts at, or -1 when the
        # window is anchored at ``earliest`` inside its segment.
        begin = 0.0
        bp = -2  # not yet found
        if feasible[0]:
            if not flips or float(
                times[index + 1 + flips[0]]
            ) >= earliest + duration - _EPS:
                begin = earliest
                bp = -1
            starts = flips[1::2]
            ends = flips[2::2]
        else:
            starts = flips[0::2]
            ends = flips[1::2]
        if bp == -2:
            for k in range(len(ends)):
                s = index + 1 + starts[k]
                anchor = float(times[s])
                if float(times[index + 1 + ends[k]]) >= anchor + duration - _EPS:
                    begin = anchor
                    bp = s
                    break
            else:
                if len(starts) > len(ends):
                    s = index + 1 + starts[-1]
                    begin = float(times[s])  # final run: infinite tail
                    bp = s
                else:
                    raise ProfileError(
                        f"no feasible start for {procs} procs x {duration}s — "
                        "the profile's tail is over-reserved"
                    )

        # Apply the reservation without re-validating.  Resolve the start
        # breakpoint scalar-wise: breakpoints are pairwise > _EPS apart, so
        # when the run begins at breakpoint ``bp`` the tolerance search
        # could only ever find ``bp`` itself; when it begins at
        # ``earliest``, the enclosing segment's edges are the only
        # candidates within tolerance.
        if bp >= 0:
            first = bp
        else:
            nxt = index + 1
            if nxt < n and float(times[nxt]) - begin <= _EPS:
                first = nxt
            elif begin - float(times[index]) <= _EPS:
                first = index
            else:
                self._insert(index + 1, begin, int(self._free[index]))
                first = index + 1
        last = self._ensure_breakpoint(begin + duration)
        self._free[first:last] -= procs
        if self._free[last] == self._free[last - 1]:
            self._delete(last)
        if first > 0 and self._free[first] == self._free[first - 1]:
            self._delete(first)
        return begin

    # -- batch primitives --------------------------------------------------------

    def _validate_many(self, procs: np.ndarray, durations: np.ndarray) -> None:
        """Vectorized version of the scalar claim/find_start argument checks."""
        bad = ((procs <= 0) | (procs > self.total_procs)).nonzero()[0]
        if bad.size:
            raise ProfileError(
                f"cannot place {int(procs[bad[0]])} procs on a "
                f"{self.total_procs}-proc profile"
            )
        bad = (durations <= 0).nonzero()[0]
        if bad.size:
            raise ProfileError(
                f"duration must be > 0, got {float(durations[bad[0]])}"
            )

    def _sweep_many(
        self, procs: np.ndarray, durations: np.ndarray, earliest: float, index: int
    ) -> np.ndarray:
        """Earliest feasible start for each job, in one 2D sweep.

        ``earliest`` must already be clamped to the origin and ``index``
        must be ``searchsorted(earliest, "right") - 1`` (the segment
        containing ``earliest``).  Equivalent to one :meth:`find_start`
        per row: a position is a valid anchor iff its segment is feasible
        and the feasible run containing it extends past ``anchor +
        duration - _EPS``; within a run the earliest anchor dominates, so
        the first valid position per row is exactly the run start (or
        ``earliest`` itself) the scalar sweep would return.
        """
        n = self._n
        seg_times = self._times[index:n]
        seg_free = self._free[index:n]
        b = n - index
        feasible = seg_free[None, :] >= procs[:, None]
        # Per row, the first infeasible segment at or after each position:
        # infeasible positions keep their own index, feasible ones take the
        # sentinel ``b``, and a reversed running minimum propagates the next
        # blocker leftwards.
        positions = np.arange(b)
        blocked = np.where(feasible, b, positions[None, :])
        next_block = np.minimum.accumulate(blocked[:, ::-1], axis=1)[:, ::-1]
        # The run containing a feasible position ends where its next blocker
        # begins; the final segment's run extends to infinity.
        edge = np.empty(b + 1, dtype=np.float64)
        edge[:b] = seg_times
        edge[b] = np.inf
        run_end = edge[next_block]
        anchors = seg_times.astype(np.float64, copy=True)
        anchors[0] = earliest  # seg_times[0] <= earliest by choice of index
        ok = feasible & (run_end >= anchors[None, :] + durations[:, None] - _EPS)
        covered = ok.any(axis=1)
        if not covered.all():
            k = int(np.flatnonzero(~covered)[0])
            raise ProfileError(
                f"no feasible start for {int(procs[k])} procs x "
                f"{float(durations[k])}s — the profile's tail is over-reserved"
            )
        return anchors[ok.argmax(axis=1)]

    def find_start_many(self, procs, durations, earliest: float) -> list[float]:
        """:meth:`find_start` for many jobs against the *current* profile.

        One vectorized sweep over the breakpoint arrays answers every
        ``(procs[i], durations[i])`` what-if at once; the profile is not
        mutated, so the results are independent (each is what
        :meth:`find_start` would return right now — NOT the outcome of
        claiming them in sequence; see :meth:`claim_many` for that).
        """
        procs = np.ascontiguousarray(procs, dtype=np.int64)
        durations = np.ascontiguousarray(durations, dtype=np.float64)
        if procs.shape[0] == 0:
            return []
        self._validate_many(procs, durations)
        times = self._times[: self._n]
        if earliest < times[0]:
            earliest = float(times[0])
        index = int(times.searchsorted(earliest, side="right")) - 1
        return self._sweep_many(procs, durations, earliest, index).tolist()

    def claim_many(self, procs, durations, earliest: float) -> list[float]:
        """Sequential :meth:`claim` for many jobs, batched.

        State- and value-identical to ``[self.claim(p, d, earliest) for
        p, d in ...]`` — the repack loop of every reservation discipline —
        but with the per-call overhead amortized across the batch:

        * argument validation runs once up front over the whole batch (so
          invalid input fails fast with the profile untouched, instead of
          after the preceding claims applied);
        * the segment containing ``earliest`` is located once and then
          maintained *incrementally* — the only mutation that can move it
          is this loop's own insert-at-``earliest`` (and the coalescing
          delete that can later remove that breakpoint), both of which
          are visible at the call site, so the per-claim ``searchsorted``
          over the anchor is gone;
        * the ``_insert``/``_delete``/``_ensure_breakpoint`` helpers are
          inlined with the backing arrays and live length hoisted into
          locals, eliminating a half-dozen method calls and attribute
          loads per job.

        A 2D precompute-then-recheck scheme (sweep the chunk's starts up
        front via :meth:`_sweep_many`, commit each after an exactness
        recheck) was tried first and *loses* on the deep-queue repacks
        this call exists for: consecutive FCFS claims compete for the same
        holes, so >95% of precomputed starts go stale after the first
        commit and every job pays the recheck on top of a full scalar
        claim (see DESIGN.md section 14).  The batch win on contended
        profiles comes from stripping the sequential loop, not from
        precomputing against a profile that is about to change.
        """
        plist = [int(p) for p in procs]
        dlist = [float(d) for d in durations]
        total = len(plist)
        if total == 0:
            return []
        # Same checks and messages as the scalar claim, batched via
        # C-speed min/max instead of a numpy round-trip.
        if min(plist) <= 0 or max(plist) > self.total_procs:
            bad = next(
                p for p in plist if p <= 0 or p > self.total_procs
            )
            raise ProfileError(
                f"cannot place {bad} procs on a {self.total_procs}-proc profile"
            )
        if min(dlist) <= 0:
            bad = next(d for d in dlist if d <= 0)
            raise ProfileError(f"duration must be > 0, got {bad}")
        out: list[float] = []
        append = out.append

        times_arr = self._times
        free_arr = self._free
        n = self._n
        t0 = float(times_arr[0])
        base = earliest if earliest > t0 else t0
        # Segment containing ``base`` (== claim's per-call searchsorted).
        index = int(times_arr[:n].searchsorted(base, side="right")) - 1

        for j in range(total):
            p = plist[j]
            d = dlist[j]

            # -- find (claim's sweep, via C-speed byte scans) --------------
            # The feasibility mask is materialized once as raw bytes and
            # the maximal feasible runs are walked with ``bytes.find``
            # (memchr): enumerating runs this way visits exactly the flip
            # positions claim's ``nonzero`` sweep produces, but the winner
            # is usually found after two or three probes instead of
            # materializing every flip.
            buf = (free_arr[index:n] >= p).tobytes()
            find = buf.find
            begin = 0.0
            bp = -2  # not yet found
            cursor = 0
            if buf[0]:
                blocker = find(0, 1)
                if blocker < 0 or times_arr[index + blocker] >= base + d - _EPS:
                    begin = base
                    bp = -1
                else:
                    cursor = blocker + 1
            while bp == -2:
                s = find(1, cursor)
                if s < 0:
                    self._n = n
                    raise ProfileError(
                        f"no feasible start for {p} procs x {d}s — "
                        "the profile's tail is over-reserved"
                    )
                blocker = find(0, s + 1)
                anchor = float(times_arr[index + s])
                if blocker < 0 or times_arr[index + blocker] >= anchor + d - _EPS:
                    begin = anchor  # final run extends to the infinite tail
                    bp = index + s
                else:
                    cursor = blocker + 1

            # -- apply (claim's tail, helpers inlined) ---------------------
            if bp >= 0:
                first = bp
            else:
                nxt = index + 1
                if nxt < n and float(times_arr[nxt]) - begin <= _EPS:
                    first = nxt
                elif begin - float(times_arr[index]) <= _EPS:
                    first = index
                else:
                    # insert breakpoint ``begin`` (== base) at index + 1
                    if n + 1 > len(times_arr):
                        self._n = n
                        self._reserve_capacity(n + 1)
                        times_arr = self._times
                        free_arr = self._free
                    pos = index + 1
                    times_arr[pos + 1 : n + 1] = times_arr[pos:n]
                    free_arr[pos + 1 : n + 1] = free_arr[pos:n]
                    times_arr[pos] = begin
                    free_arr[pos] = free_arr[index]
                    n += 1
                    first = pos
                    index = pos  # the anchor segment now starts at ``base``

            end = begin + d
            # Deep-queue claims stack at the far end of the profile, so the
            # end edge very often lands beyond every breakpoint — a scalar
            # compare against the last one skips the binary search.
            if end - float(times_arr[n - 1]) > _EPS:
                pos = n
            else:
                pos = int(times_arr[:n].searchsorted(end, side="left"))
            if pos < n and abs(float(times_arr[pos]) - end) <= _EPS:
                last = pos
            elif pos > 0 and abs(float(times_arr[pos - 1]) - end) <= _EPS:
                last = pos - 1
            else:
                # insert breakpoint ``end`` at pos (pos >= 1: end > base >= t0)
                if n + 1 > len(times_arr):
                    self._n = n
                    self._reserve_capacity(n + 1)
                    times_arr = self._times
                    free_arr = self._free
                times_arr[pos + 1 : n + 1] = times_arr[pos:n]
                free_arr[pos + 1 : n + 1] = free_arr[pos:n]
                times_arr[pos] = end
                free_arr[pos] = free_arr[pos - 1]
                n += 1
                last = pos

            if last == first + 1:
                free_arr[first] -= p
            else:
                free_arr[first:last] -= p
            if free_arr[last] == free_arr[last - 1]:
                times_arr[last : n - 1] = times_arr[last + 1 : n]
                free_arr[last : n - 1] = free_arr[last + 1 : n]
                n -= 1
            if first > 0 and free_arr[first] == free_arr[first - 1]:
                times_arr[first : n - 1] = times_arr[first + 1 : n]
                free_arr[first : n - 1] = free_arr[first + 1 : n]
                n -= 1
                if first == index:
                    # The coalesce removed the breakpoint at ``base`` that
                    # an earlier iteration inserted; the anchor segment
                    # reverts to the one preceding it.
                    index -= 1

            append(begin)

        self._n = n
        return out

    def min_free_many(self, durations, start: float) -> list[int]:
        """:meth:`min_free` from a common ``start`` for many durations.

        One running minimum over the free array answers every window at
        once: ``min_free(start, d)`` is the cumulative minimum at the last
        segment the window overlaps.  Durations must be positive (the
        scalar method's ``duration <= 0`` point-query special case is not
        replicated).
        """
        durations = np.ascontiguousarray(durations, dtype=np.float64)
        if durations.shape[0] == 0:
            return []
        if (durations <= 0).any():
            bad = float(durations[durations <= 0][0])
            raise ProfileError(f"duration must be > 0, got {bad}")
        n = self._n
        times = self._times[:n]
        first = max(int(times.searchsorted(start + _EPS, side="right")) - 1, 0)
        stops = times.searchsorted(start + durations - _EPS, side="left")
        running_min = np.minimum.accumulate(self._free[first:n])
        result = np.where(
            stops <= first,
            self.total_procs,
            running_min[np.maximum(stops - first - 1, 0)],
        )
        return result.tolist()

    def fits_now_mask(self, procs) -> np.ndarray:
        """``free_at(origin) >= procs[i]`` for every candidate."""
        return fits_mask(procs, int(self._free[0]))

    def finishes_by_mask(self, durations, deadline: float) -> np.ndarray:
        """``origin + durations[i] <= deadline + _EPS`` for every candidate."""
        return finishes_by_mask(float(self._times[0]), durations, deadline)

    # -- mutations ------------------------------------------------------------------

    def _ensure_breakpoint(self, time: float) -> int:
        """Make ``time`` a breakpoint (splitting a segment) and return its index.

        Exact search plus a two-sided tolerance snap.  Locating the
        candidate via ``searchsorted(time + _EPS)`` is wrong here:
        ``time + _EPS`` can round up onto an edge whose true distance
        from ``time`` exceeds ``_EPS``, so the snap test rejects it yet
        the insertion index lands *past* that edge — an out-of-order
        corruption of the breakpoint array.
        """
        times = self._times[: self._n]
        pos = int(times.searchsorted(time, side="left"))
        if pos < self._n and abs(float(times[pos]) - time) <= _EPS:
            return pos
        if pos > 0 and abs(float(times[pos - 1]) - time) <= _EPS:
            return pos - 1
        if time < float(times[0]) - _EPS:
            raise ProfileError(
                f"breakpoint {time} precedes profile origin {times[0]}"
            )
        self._insert(pos, time, int(self._free[max(pos - 1, 0)]))
        return pos

    def _apply(self, delta: int, start: float, end: float) -> None:
        if end <= start + _EPS:
            raise ProfileError(f"empty reservation window [{start}, {end})")
        # Validate against the existing segments BEFORE touching the
        # representation, so a failed apply leaves the profile bit-identical.
        # Only one bound can be violated per sign of delta: a reserve
        # (delta < 0) can only underflow the window minimum, a release only
        # overflow the maximum — so a single vectorized reduction suffices.
        times = self._times[: self._n]
        first_seg = max(int(times.searchsorted(start + _EPS, side="right")) - 1, 0)
        stop = int(times.searchsorted(end - _EPS, side="left"))
        if stop > first_seg:
            window = self._free[first_seg:stop]
            if delta < 0:
                worst = int(window.min()) + delta
                if worst < 0:
                    raise ProfileError(
                        f"free count would become {worst} (valid range "
                        f"[0, {self.total_procs}]) on [{start}, {end})"
                    )
            else:
                worst = int(window.max()) + delta
                if worst > self.total_procs:
                    raise ProfileError(
                        f"free count would become {worst} (valid range "
                        f"[0, {self.total_procs}]) on [{start}, {end})"
                    )
        first = self._ensure_breakpoint(start)
        last = self._ensure_breakpoint(end)
        self._free[first:last] += delta
        # Localized coalescing: every interior adjacent pair moved by the
        # same delta, so (by the coalesced invariant) it stays unequal; only
        # the two window edges can merge.  Repair ``last`` first so
        # ``first``'s index is still valid.
        if self._free[last] == self._free[last - 1]:
            self._delete(last)
        if first > 0 and self._free[first] == self._free[first - 1]:
            self._delete(first)

    def reserve(self, procs: int, start: float, duration: float) -> None:
        """Subtract ``procs`` from the free function on ``[start, start+duration)``."""
        if procs <= 0:
            raise ProfileError(f"reserve needs procs > 0, got {procs}")
        self._apply(-procs, start, start + duration)

    def release(self, procs: int, start: float, duration: float) -> None:
        """Add ``procs`` back on ``[start, start+duration)`` (undo a reserve)."""
        if procs <= 0:
            raise ProfileError(f"release needs procs > 0, got {procs}")
        self._apply(procs, start, start + duration)

    def advance(self, time: float) -> None:
        """Move the origin forward to ``time``, dropping stale breakpoints.

        The free count in force at ``time`` becomes the new first segment.
        No coalescing is needed: surviving adjacent pairs were adjacent
        (and hence unequal) before the prefix was dropped.
        """
        n = self._n
        times = self._times[:n]
        if time < times[0] - _EPS:
            raise ProfileError(
                f"cannot advance profile backwards ({times[0]} -> {time})"
            )
        index = int(times.searchsorted(time + _EPS, side="right")) - 1
        if index <= 0:
            if abs(times[0] - time) > _EPS and time > times[0]:
                self._times[0] = time
            return
        self._times[0 : n - index] = self._times[index:n]
        self._free[0 : n - index] = self._free[index:n]
        self._times[0] = time
        self._n = n - index

    def fork(self) -> "Profile":
        """Independent copy for scheduler checkpointing.

        Two array copies (the live prefix travels with its spare
        capacity) — no re-validation, no Python per-segment loop.
        """
        dup = Profile.__new__(Profile)
        dup.total_procs = self.total_procs
        dup._times = self._times.copy()
        dup._free = self._free.copy()
        dup._n = self._n
        return dup

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_running_jobs(
        cls,
        total_procs: int,
        now: float,
        running: Iterable[tuple[int, float]],
    ) -> "Profile":
        """Build a profile from ``(procs, estimated_finish)`` of running jobs.

        Jobs whose estimated finish has already passed (defensive: cannot
        happen while runtimes are capped at estimates) occupy a
        microsecond-length slot so the present instant still shows them
        busy.  Delegates to :meth:`rebuild_into` — one O(R log R) endpoint
        sweep rather than R sequential reserve+coalesce passes.
        """
        profile = cls(total_procs, origin=now)
        profile.rebuild_into(now, running)
        return profile

    def rebuild_into(self, now: float, running: Iterable[tuple[int, float]]) -> None:
        """Reset to origin ``now`` and bulk-load ``running`` occupancy in place.

        Reuses the existing breakpoint arrays, so repacking schedulers
        (conservative's ``repack`` compression, depth, selective, slack)
        can rebuild their plan every event without allocating a fresh
        profile.  All running jobs occupy ``[now, horizon_i)``, so the free
        function is ``total - sum(procs of jobs with horizon > t)``: one
        sort of the horizons and a single sweep accumulating releases
        yields the exact step function sequential reserves would build.
        """
        if not math.isfinite(now):
            raise ProfileError(f"profile origin must be finite, got {now}")
        floor = now + 1e-6
        horizons: list[tuple[float, int]] = []
        busy = 0
        for procs, finish in running:
            if procs <= 0:
                raise ProfileError(f"reserve needs procs > 0, got {procs}")
            busy += procs
            horizons.append((finish if finish > floor else floor, procs))
        if busy > self.total_procs:
            raise ProfileError(
                f"free count would become {self.total_procs - busy} (valid "
                f"range [0, {self.total_procs}]) on [{now}, ...)"
            )
        horizons.sort()
        self._reserve_capacity(len(horizons) + 1)
        times, free = self._times, self._free
        times[0] = now
        level = self.total_procs - busy
        free[0] = level
        n = 1
        for horizon, procs in horizons:
            level += procs
            if horizon - times[n - 1] <= _EPS:
                # Endpoint merges with the previous breakpoint exactly the
                # way _ensure_breakpoint's tolerance would.
                free[n - 1] = level
            else:
                times[n] = horizon
                free[n] = level
                n += 1
        self._n = n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(
            f"{t:.6g}:{f}"
            for t, f in zip(self._times[: self._n], self._free[: self._n])
        )
        return f"Profile(total={self.total_procs}, steps=[{steps}])"

"""REFERENCE availability profile: the pre-optimization kernel, kept verbatim.

This module freezes the straightforward :class:`Profile` implementation
that :mod:`repro.sched.profile` originally shipped — every mutation
re-validates and fully re-coalesces its arrays, and
:meth:`Profile.from_running_jobs` builds by sequential ``reserve`` calls
(O(R^2) for R running jobs).  The optimized kernel must produce
*byte-identical schedules* against this one; the differential property
suite (``tests/properties/test_prop_kernel_equivalence.py``) and the
kernel benchmark (``benchmarks/bench_kernel.py``) both run schedulers
against it via :func:`configure_reference_kernel`.

Do not optimize this file: its value is being the slow, obviously-correct
oracle.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable

from repro.errors import ProfileError

__all__ = ["Profile", "configure_reference_kernel"]

#: Tolerance for comparing reservation timestamps.
_EPS = 1e-9


class Profile:
    """Free-processor step function over ``[origin, +inf)``."""

    __slots__ = ("total_procs", "_times", "_free")

    def __init__(self, total_procs: int, origin: float = 0.0) -> None:
        if total_procs <= 0:
            raise ProfileError(f"profile needs > 0 processors, got {total_procs}")
        if not math.isfinite(origin):
            raise ProfileError(f"profile origin must be finite, got {origin}")
        self.total_procs = total_procs
        # Parallel arrays: breakpoint times and the free count from each
        # breakpoint until the next.  Invariants: _times strictly increasing,
        # _times[0] is the origin, 0 <= free <= total_procs.
        self._times: list[float] = [origin]
        self._free: list[int] = [total_procs]

    # -- queries --------------------------------------------------------------

    @property
    def origin(self) -> float:
        """Left edge of the profile (the current simulation clock)."""
        return self._times[0]

    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (must be >= origin)."""
        if time < self._times[0] - _EPS:
            raise ProfileError(
                f"query at {time} precedes profile origin {self._times[0]}"
            )
        index = bisect.bisect_right(self._times, time + _EPS) - 1
        return self._free[max(index, 0)]

    def min_free(self, start: float, duration: float) -> int:
        """Minimum free processors over the window ``[start, start+duration)``."""
        if duration <= 0:
            return self.free_at(start)
        end = start + duration
        first = max(bisect.bisect_right(self._times, start + _EPS) - 1, 0)
        lowest = self.total_procs
        for index in range(first, len(self._times)):
            if self._times[index] >= end - _EPS:
                break
            lowest = min(lowest, self._free[index])
        return lowest

    def breakpoints(self) -> list[tuple[float, int]]:
        """Copy of the step function as ``(time, free)`` pairs."""
        return list(zip(self._times, self._free))

    # -- core primitive ----------------------------------------------------------

    def find_start(self, procs: int, duration: float, earliest: float) -> float:
        """Earliest ``t >= earliest`` with ``procs`` free over ``[t, t+duration)``.

        Candidate anchors are ``earliest`` itself and every later breakpoint
        (free counts only change at breakpoints, so the optimum is always one
        of these).  Implemented as a single left-to-right sweep tracking the
        start of the current feasible run — O(breakpoints), not
        O(breakpoints^2) as a per-anchor rescan would be (this is the inner
        loop of every reservation-based scheduler; see
        benchmarks/bench_profile.py).  Always succeeds: the profile ends in
        a final infinite segment, so any rectangle with ``procs <= total``
        fits once all reservations end — unless the tail itself is
        over-reserved, which is a usage bug.
        """
        if procs <= 0 or procs > self.total_procs:
            raise ProfileError(
                f"cannot place {procs} procs on a {self.total_procs}-proc profile"
            )
        if duration <= 0:
            raise ProfileError(f"duration must be > 0, got {duration}")
        earliest = max(earliest, self._times[0])

        times, free = self._times, self._free
        # Exact bisect, NOT the +_EPS-fudged one the other queries use: with
        # the fudge, a breakpoint in ``(earliest, earliest + _EPS]`` makes the
        # sweep skip the segment that actually contains ``earliest`` — and if
        # that segment is feasible, the job is delayed past a start the
        # profile can support.  The exact form never anchors inside an
        # infeasible sliver either: run_start stays clamped to segments whose
        # free count was checked.
        index = max(bisect.bisect_right(times, earliest) - 1, 0)
        run_start: float | None = None
        for i in range(index, len(times)):
            if free[i] < procs:
                run_start = None
                continue
            if run_start is None:
                run_start = max(times[i], earliest)
            segment_end = times[i + 1] if i + 1 < len(times) else math.inf
            if segment_end >= run_start + duration - _EPS:
                return run_start
        raise ProfileError(
            f"no feasible start for {procs} procs x {duration}s — "
            "the profile's tail is over-reserved"
        )

    def claim(self, procs: int, duration: float, earliest: float) -> float:
        """:meth:`find_start` + :meth:`reserve` in sequence; returns the start.

        The optimized kernel fuses these into one pass; the reference keeps
        the literal two-call composition so the differential suite pins the
        fused path to the seed semantics.
        """
        start = self.find_start(procs, duration, earliest)
        self.reserve(procs, start, duration)
        return start

    # -- batch primitives (naive loop equivalents) ---------------------------------
    #
    # The optimized kernel vectorizes these; the oracle keeps the literal
    # one-call-per-job loops so the batch-claim property suite
    # (tests/properties/test_prop_batch_claims.py) can pin the vectorized
    # forms to the obviously-correct sequential semantics.

    def find_start_many(self, procs, durations, earliest: float) -> list[float]:
        """One :meth:`find_start` per job against the current (fixed) profile."""
        return [
            self.find_start(p, d, earliest) for p, d in zip(procs, durations)
        ]

    def claim_many(self, procs, durations, earliest: float) -> list[float]:
        """One :meth:`claim` per job, in order — the definitional semantics."""
        return [self.claim(p, d, earliest) for p, d in zip(procs, durations)]

    def min_free_many(self, durations, start: float) -> list[int]:
        """One :meth:`min_free` per duration from a common start."""
        for d in durations:
            if d <= 0:
                raise ProfileError(f"duration must be > 0, got {float(d)}")
        return [self.min_free(start, d) for d in durations]

    def fits_now_mask(self, procs) -> list[bool]:
        free_now = self._free[0]
        return [p <= free_now for p in procs]

    def finishes_by_mask(self, durations, deadline: float) -> list[bool]:
        origin = self._times[0]
        return [origin + d <= deadline + _EPS for d in durations]

    # -- mutations ------------------------------------------------------------------

    def _ensure_breakpoint(self, time: float) -> int:
        """Make ``time`` a breakpoint (splitting a segment) and return its index.

        Exact bisect plus a two-sided tolerance snap (fixed in both
        kernels together): ``bisect_right(time + _EPS)`` can round onto
        an edge farther than ``_EPS`` from ``time``, rejecting the snap
        yet inserting past that edge out of order.
        """
        pos = bisect.bisect_left(self._times, time)
        if pos < len(self._times) and abs(self._times[pos] - time) <= _EPS:
            return pos
        if pos > 0 and abs(self._times[pos - 1] - time) <= _EPS:
            return pos - 1
        if time < self._times[0] - _EPS:
            raise ProfileError(
                f"breakpoint {time} precedes profile origin {self._times[0]}"
            )
        self._times.insert(pos, time)
        self._free.insert(pos, self._free[max(pos - 1, 0)])
        return pos

    def _apply(self, delta: int, start: float, end: float) -> None:
        if end <= start + _EPS:
            raise ProfileError(f"empty reservation window [{start}, {end})")
        # Validate against the existing segments BEFORE touching the
        # representation, so a failed apply leaves the profile bit-identical.
        first_seg = max(bisect.bisect_right(self._times, start + _EPS) - 1, 0)
        for index in range(first_seg, len(self._times)):
            if self._times[index] >= end - _EPS:
                break
            updated = self._free[index] + delta
            if updated < 0 or updated > self.total_procs:
                raise ProfileError(
                    f"free count would become {updated} (valid range "
                    f"[0, {self.total_procs}]) on [{self._times[index]}, ...)"
                )
        first = self._ensure_breakpoint(start)
        last = self._ensure_breakpoint(end)
        for index in range(first, last):
            self._free[index] += delta
        self._coalesce()

    def reserve(self, procs: int, start: float, duration: float) -> None:
        """Subtract ``procs`` from the free function on ``[start, start+duration)``."""
        if procs <= 0:
            raise ProfileError(f"reserve needs procs > 0, got {procs}")
        self._apply(-procs, start, start + duration)

    def release(self, procs: int, start: float, duration: float) -> None:
        """Add ``procs`` back on ``[start, start+duration)`` (undo a reserve)."""
        if procs <= 0:
            raise ProfileError(f"release needs procs > 0, got {procs}")
        self._apply(procs, start, start + duration)

    def advance(self, time: float) -> None:
        """Move the origin forward to ``time``, dropping stale breakpoints.

        The free count in force at ``time`` becomes the new first segment.
        """
        if time < self._times[0] - _EPS:
            raise ProfileError(
                f"cannot advance profile backwards ({self._times[0]} -> {time})"
            )
        index = bisect.bisect_right(self._times, time + _EPS) - 1
        if index <= 0:
            if abs(self._times[0] - time) > _EPS and time > self._times[0]:
                self._times[0] = time
            return
        del self._times[:index]
        del self._free[:index]
        self._times[0] = time
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent segments with equal free counts."""
        write = 0
        for read in range(1, len(self._times)):
            if self._free[read] != self._free[write]:
                write += 1
                self._times[write] = self._times[read]
                self._free[write] = self._free[read]
        del self._times[write + 1 :]
        del self._free[write + 1 :]

    def fork(self) -> "Profile":
        """Independent copy for scheduler checkpointing (naive list copy).

        Part of the frozen kernel API so the checkpoint differential
        suite covers both kernels; kept deliberately plain.
        """
        dup = Profile.__new__(Profile)
        dup.total_procs = self.total_procs
        dup._times = list(self._times)
        dup._free = list(self._free)
        return dup

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_running_jobs(
        cls,
        total_procs: int,
        now: float,
        running: Iterable[tuple[int, float]],
    ) -> "Profile":
        """Build a profile from ``(procs, estimated_finish)`` of running jobs.

        Jobs whose estimated finish has already passed (defensive: cannot
        happen while runtimes are capped at estimates) occupy a
        microsecond-length slot so the present instant still shows them
        busy.
        """
        profile = cls(total_procs, origin=now)
        for procs, finish in running:
            horizon = max(finish, now + 1e-6)
            profile.reserve(procs, now, horizon - now)
        return profile

    def rebuild_into(self, now: float, running: Iterable[tuple[int, float]]) -> None:
        """Reset to origin ``now`` and reload ``running`` occupancy.

        API-compatible with the optimized kernel's buffer-reuse repack
        path, implemented the slow reference way: a fresh single segment
        followed by one sequential ``reserve`` per running job.
        """
        if not math.isfinite(now):
            raise ProfileError(f"profile origin must be finite, got {now}")
        self._times[:] = [now]
        self._free[:] = [self.total_procs]
        for procs, finish in running:
            horizon = max(finish, now + 1e-6)
            self.reserve(procs, now, horizon - now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = ", ".join(f"{t:.6g}:{f}" for t, f in zip(self._times, self._free))
        return f"Profile(total={self.total_procs}, steps=[{steps}])"


def configure_reference_kernel(scheduler):
    """Flip a scheduler instance onto the reference (seed) kernel.

    Plans with this module's :class:`Profile`, appends + full-sorts the
    idle queue on every pass, and recomputes EASY's shadow from scratch at
    every event — exactly the pre-optimization behaviour the differential
    suite and ``bench_kernel.py`` compare against.  Call before ``bind()``.
    """
    scheduler.profile_factory = Profile
    scheduler.incremental_queue = False
    scheduler.use_shadow_cache = False
    return scheduler

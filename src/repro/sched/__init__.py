"""Scheduler framework: the paper's subject matter.

* :mod:`repro.sched.profile` — the processor-availability timeline ("2D
  chart" of the paper's Section 2) used to place reservations.
* :mod:`repro.sched.priority` — queue priority policies (FCFS, SJF,
  XFactor, ...).
* :mod:`repro.sched.backfill` — the scheduling disciplines: plain
  space-sharing, conservative backfilling, aggressive (EASY) backfilling,
  and selective backfilling.
"""

from repro.sched.base import Scheduler, configure_sequential_claims
from repro.sched.profile import Profile
from repro.sched.reservations import AdvanceReservation
from repro.sched.priority.policies import (
    PriorityPolicy,
    FCFSPriority,
    SJFPriority,
    LJFPriority,
    XFactorPriority,
    SmallestFirstPriority,
    CompositePriority,
)
from repro.sched.backfill.nobf import FCFSScheduler
from repro.sched.backfill.conservative import ConservativeScheduler
from repro.sched.backfill.easy import EasyScheduler
from repro.sched.backfill.selective import SelectiveScheduler
from repro.sched.backfill.lookahead import LookaheadScheduler
from repro.sched.backfill.slack import SlackScheduler
from repro.sched.backfill.depth import DepthScheduler
from repro.sched.backfill.multiqueue import MultiQueueScheduler, QueueClass

__all__ = [
    "Scheduler",
    "configure_sequential_claims",
    "Profile",
    "AdvanceReservation",
    "PriorityPolicy",
    "FCFSPriority",
    "SJFPriority",
    "LJFPriority",
    "XFactorPriority",
    "SmallestFirstPriority",
    "CompositePriority",
    "FCFSScheduler",
    "ConservativeScheduler",
    "EasyScheduler",
    "SelectiveScheduler",
    "LookaheadScheduler",
    "SlackScheduler",
    "DepthScheduler",
    "MultiQueueScheduler",
    "QueueClass",
]

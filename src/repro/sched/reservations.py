"""Advance reservations: capacity blocked at a fixed future time.

Production schedulers accept *advance reservations* — "P processors from
T1 to T2" — for maintenance windows, co-allocated grid jobs, or deadline
runs (Snell et al., "The performance impact of advance reservation
meta-scheduling", in this paper's related-work orbit).  An AR is a hard
rectangle in the 2D chart that batch jobs must be packed around.

Support spans two layers:

* the **simulator** blocks the processors for the window (an internal
  blocker allocation the scheduler is never notified about);
* the **scheduler** must plan around the window, which only disciplines
  with an availability profile can do — ConservativeScheduler,
  SelectiveScheduler and DepthScheduler accept ``advance_reservations``;
  passing ARs to a scheduler without planning support is rejected at
  simulation start (EASY's shadow heuristic cannot honour a hard future
  rectangle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sched.profile import Profile

__all__ = ["AdvanceReservation", "carve_reservations", "validate_reservation_set"]


@dataclass(frozen=True)
class AdvanceReservation:
    """A hard capacity block: ``procs`` processors over [start, start+duration)."""

    procs: int
    start: float
    duration: float
    label: str = "AR"

    def __post_init__(self) -> None:
        if self.procs <= 0:
            raise ConfigurationError(f"AR needs procs > 0, got {self.procs}")
        if not math.isfinite(self.start) or self.start < 0:
            raise ConfigurationError(
                f"AR start must be finite and >= 0, got {self.start}"
            )
        if not math.isfinite(self.duration) or self.duration <= 0:
            raise ConfigurationError(
                f"AR duration must be finite and > 0, got {self.duration}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


def validate_reservation_set(
    reservations: tuple[AdvanceReservation, ...] | list[AdvanceReservation],
    total_procs: int,
) -> None:
    """Reject AR sets that jointly oversubscribe the machine.

    Overlapping windows are legal as long as their combined width fits;
    a set that exceeds ``total_procs`` at any instant could never be
    honoured and would otherwise surface as an allocation failure deep
    inside a simulation run.
    """
    events: list[tuple[float, int]] = []
    for ar in reservations:
        if ar.procs > total_procs:
            raise ConfigurationError(
                f"advance reservation {ar.label!r} needs {ar.procs} procs on a "
                f"{total_procs}-proc machine"
            )
        events.append((ar.start, ar.procs))
        events.append((ar.end, -ar.procs))
    events.sort()
    busy = 0
    for time, delta in events:
        busy += delta
        if busy > total_procs:
            raise ConfigurationError(
                f"advance reservations jointly need {busy} procs at t={time} "
                f"on a {total_procs}-proc machine"
            )


def carve_reservations(
    profile: Profile,
    reservations: tuple[AdvanceReservation, ...] | list[AdvanceReservation],
    now: float,
) -> None:
    """Subtract every AR's remaining window from an availability profile.

    Windows entirely in the past are skipped; windows already underway are
    carved from ``now`` to their end (the simulator's blocker holds the
    machine-side processors for that same remainder).
    """
    for ar in reservations:
        if ar.end <= now:
            continue
        start = max(ar.start, now)
        profile.reserve(ar.procs, start, ar.end - start)

"""Queue priority policies (paper Section 2).

A priority policy orders the idle queue.  The paper studies three:

* **FCFS** — priority is wait time: earliest submission first.
* **SJF** — shortest job first by *user estimated* runtime (the scheduler
  cannot see actual runtimes).
* **XFactor** — largest expansion factor first, where
  ``xfactor = (wait + estimated_runtime) / estimated_runtime``.  XFactor
  grows quickly for short jobs, so it implicitly favours them while still
  aging long waiters.

Two more are provided for completeness and ablations: **LJF** (longest
first) and **SmallestFirst** (narrowest first), plus a weighted
:class:`CompositePriority` for building blends like WFP-style policies.

A policy maps ``(job, now)`` to a sort key; *smaller keys run first*.
Every key ends with ``(submit_time, job_id)`` so orderings are total and
deterministic, which keeps whole simulations reproducible.

:attr:`PriorityPolicy.is_dynamic` is a load-bearing performance flag, not
documentation: the scheduler base class keeps the idle queue of a
*static* policy (``is_dynamic`` is False) sorted incrementally by binary
insertion and never re-sorts it, so a policy whose keys depend on ``now``
or on mutable internal state (fair-share usage) MUST declare
``is_dynamic = True`` or queues will silently serve a stale order.
Static keys must ignore the ``now`` argument entirely.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.workload.job import Job

__all__ = [
    "PriorityPolicy",
    "FCFSPriority",
    "SJFPriority",
    "LJFPriority",
    "XFactorPriority",
    "SmallestFirstPriority",
    "CompositePriority",
    "xfactor",
    "policy_by_name",
    "PRIORITY_POLICIES",
]


def xfactor(job: Job, now: float) -> float:
    """Expansion factor of a waiting job at time ``now``.

    ``(wait + estimated_runtime) / estimated_runtime``; equals 1.0 at
    submission and grows linearly with waiting time, with slope inversely
    proportional to the estimate.
    """
    wait = max(now - job.submit_time, 0.0)
    return (wait + job.estimate) / job.estimate


class PriorityPolicy(ABC):
    """Orders the idle queue; smaller keys are scheduled first."""

    #: Short name used in reports and the CLI.
    name: str = "base"

    @abstractmethod
    def key(self, job: Job, now: float) -> tuple:
        """Sort key for ``job`` at time ``now`` (smaller = higher priority)."""

    def sort(self, jobs: Sequence[Job], now: float) -> list[Job]:
        """Return ``jobs`` ordered from highest to lowest priority."""
        return sorted(jobs, key=lambda job: self.key(job, now))

    @property
    def is_dynamic(self) -> bool:
        """True if keys change as time passes (queue must be re-sorted).

        Static policies (the False default) get an incrementally
        maintained sorted queue from :class:`repro.sched.base.Scheduler`;
        their :meth:`key` must therefore be a pure function of the job.
        """
        return False

    def fork(self) -> "PriorityPolicy":
        """Independent copy for scheduler checkpointing.

        The standard policies are frozen and stateless, so sharing the
        instance is safe and the default just returns ``self``.  Policies
        carrying mutable per-run state (fair-share usage accounting) must
        override this with a real copy.
        """
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class FCFSPriority(PriorityPolicy):
    """First-come first-served: order by submission time."""

    name: str = "FCFS"

    def key(self, job: Job, now: float) -> tuple:
        return (job.submit_time, job.job_id)


@dataclass(frozen=True, repr=False)
class SJFPriority(PriorityPolicy):
    """Shortest job first, by user estimate."""

    name: str = "SJF"

    def key(self, job: Job, now: float) -> tuple:
        return (job.estimate, job.submit_time, job.job_id)


@dataclass(frozen=True, repr=False)
class LJFPriority(PriorityPolicy):
    """Longest job first, by user estimate (ablation baseline)."""

    name: str = "LJF"

    def key(self, job: Job, now: float) -> tuple:
        return (-job.estimate, job.submit_time, job.job_id)


@dataclass(frozen=True, repr=False)
class XFactorPriority(PriorityPolicy):
    """Largest expansion factor first (paper's XFactor policy)."""

    name: str = "XF"

    def key(self, job: Job, now: float) -> tuple:
        return (-xfactor(job, now), job.submit_time, job.job_id)

    @property
    def is_dynamic(self) -> bool:
        return True


@dataclass(frozen=True, repr=False)
class SmallestFirstPriority(PriorityPolicy):
    """Narrowest job first (ablation: helps backfilling density)."""

    name: str = "SF"

    def key(self, job: Job, now: float) -> tuple:
        return (job.procs, job.submit_time, job.job_id)


class CompositePriority(PriorityPolicy):
    """Weighted blend of normalized priority terms.

    ``score = w_wait * wait/3600 + w_xf * (xfactor - 1) - w_len * log(estimate)``
    with larger scores running first.  This is the shape of production
    "WFP"-style priority functions (e.g. in Maui); exposed here for
    ablation experiments beyond the paper's three policies.
    """

    name = "COMP"

    def __init__(
        self,
        *,
        wait_weight: float = 0.0,
        xfactor_weight: float = 0.0,
        length_weight: float = 0.0,
    ) -> None:
        if wait_weight == xfactor_weight == length_weight == 0.0:
            raise ConfigurationError("composite priority needs a non-zero weight")
        self.wait_weight = wait_weight
        self.xfactor_weight = xfactor_weight
        self.length_weight = length_weight

    def key(self, job: Job, now: float) -> tuple:
        wait_hours = max(now - job.submit_time, 0.0) / 3600.0
        score = (
            self.wait_weight * wait_hours
            + self.xfactor_weight * (xfactor(job, now) - 1.0)
            - self.length_weight * math.log(max(job.estimate, 1.0))
        )
        return (-score, job.submit_time, job.job_id)

    @property
    def is_dynamic(self) -> bool:
        return self.wait_weight != 0.0 or self.xfactor_weight != 0.0

    def __repr__(self) -> str:
        return (
            f"CompositePriority(wait={self.wait_weight}, "
            f"xf={self.xfactor_weight}, len={self.length_weight})"
        )


#: Registry of the policies used throughout the experiments.
PRIORITY_POLICIES: dict[str, PriorityPolicy] = {
    "FCFS": FCFSPriority(),
    "SJF": SJFPriority(),
    "LJF": LJFPriority(),
    "XF": XFactorPriority(),
    "SF": SmallestFirstPriority(),
}


def policy_by_name(name: str) -> PriorityPolicy:
    """Look up a policy by its short name (case insensitive)."""
    try:
        return PRIORITY_POLICIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(PRIORITY_POLICIES))
        raise ConfigurationError(f"unknown priority policy {name!r}; known: {known}")

"""Fair-share priority: throttle users who recently consumed a lot.

Production schedulers (Maui/Moab, Slurm) blend queue priority with a
*fair-share* term so a single user cannot monopolize the machine by
submitting in bulk.  This policy implements the decayed-usage form: each
user's consumed processor-seconds decay exponentially with half-life
``half_life``; the priority of a waiting job is its base policy key,
penalized by its user's current decayed usage share.

The policy is stateful (usage accrues as jobs finish), so the scheduler
must feed it completions: every scheduler built on
:class:`repro.sched.base.Scheduler` calls ``priority.observe_finish`` if
the policy exposes it — see :meth:`FairSharePriority.observe_finish`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sched.priority.policies import FCFSPriority, PriorityPolicy
from repro.workload.job import Job

__all__ = ["FairSharePriority"]


class FairSharePriority(PriorityPolicy):
    """Base priority penalized by the submitting user's decayed usage.

    ``weight`` scales how strongly usage share displaces the base order:
    the sort key is ``(usage_share * weight, *base_key)``, so with
    weight > 0 a heavy user's jobs sort behind light users' jobs whose
    base keys would otherwise tie or lose.
    """

    name = "FAIR"

    def __init__(
        self,
        base: PriorityPolicy | None = None,
        *,
        half_life: float = 86_400.0,
        weight: float = 1.0,
    ) -> None:
        if half_life <= 0:
            raise ConfigurationError(f"half_life must be > 0, got {half_life}")
        if weight < 0:
            raise ConfigurationError(f"weight must be >= 0, got {weight}")
        self.base = base or FCFSPriority()
        self.half_life = half_life
        self.weight = weight
        self._usage: dict[int, float] = {}  # user -> decayed proc-seconds
        self._last_decay = 0.0

    # -- usage bookkeeping ------------------------------------------------------

    def _decay_to(self, now: float) -> None:
        if now <= self._last_decay:
            return
        factor = 0.5 ** ((now - self._last_decay) / self.half_life)
        for user in list(self._usage):
            decayed = self._usage[user] * factor
            if decayed < 1e-9:
                del self._usage[user]
            else:
                self._usage[user] = decayed
        self._last_decay = now

    def observe_finish(self, job: Job, now: float) -> None:
        """Record a completed job's consumption against its user."""
        self._decay_to(now)
        self._usage[job.user_id] = self._usage.get(job.user_id, 0.0) + job.area

    def usage_share(self, user_id: int, now: float) -> float:
        """User's fraction of the total decayed usage (0 when idle)."""
        self._decay_to(now)
        total = sum(self._usage.values())
        if total <= 0:
            return 0.0
        return self._usage.get(user_id, 0.0) / total

    def reset(self) -> None:
        """Forget all usage (called when a scheduler rebinds)."""
        self._usage.clear()
        self._last_decay = 0.0

    def fork(self) -> "FairSharePriority":
        """Independent copy carrying the accrued usage state."""
        dup = FairSharePriority(
            self.base.fork(), half_life=self.half_life, weight=self.weight
        )
        dup._usage = dict(self._usage)
        dup._last_decay = self._last_decay
        return dup

    # -- PriorityPolicy -----------------------------------------------------------

    def key(self, job: Job, now: float) -> tuple:
        share = self.usage_share(job.user_id, now)
        return (share * self.weight, *self.base.key(job, now))

    @property
    def is_dynamic(self) -> bool:
        return True  # usage decays with time

    def __repr__(self) -> str:
        return (
            f"FairSharePriority(base={self.base!r}, half_life={self.half_life}, "
            f"weight={self.weight})"
        )

"""Queue priority policies."""

from repro.sched.priority.policies import (
    PriorityPolicy,
    FCFSPriority,
    SJFPriority,
    LJFPriority,
    XFactorPriority,
    SmallestFirstPriority,
    CompositePriority,
    policy_by_name,
    PRIORITY_POLICIES,
)
from repro.sched.priority.fairshare import FairSharePriority

__all__ = [
    "PriorityPolicy",
    "FCFSPriority",
    "SJFPriority",
    "LJFPriority",
    "XFactorPriority",
    "SmallestFirstPriority",
    "CompositePriority",
    "FairSharePriority",
    "policy_by_name",
    "PRIORITY_POLICIES",
]

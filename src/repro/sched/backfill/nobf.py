"""Plain space-sharing without backfilling (paper Section 2's baseline).

Jobs start strictly in priority order: if the highest-priority waiting job
does not fit, *nothing* behind it may start, even if it would fit.  This is
the scheme whose "low system utilization" motivated backfilling in the
first place; it is included as the reference baseline for the utilization
and slowdown comparisons.
"""

from __future__ import annotations

from repro.sched.base import Scheduler
from repro.sched.profile import fitting_prefix_count
from repro.workload.job import Job

__all__ = ["FCFSScheduler"]


class FCFSScheduler(Scheduler):
    """Strict in-order space sharing (no backfilling).

    Despite the historical name, any priority policy can be plugged in; the
    defining property is that the queue head blocks everything behind it.
    """

    name = "NOBF"

    #: Queue length from which the cumulative-sum prefix count beats the
    #: per-job Python loop.  Only consulted when the head actually fits —
    #: a blocked head answers the whole pass in one compare, and paying a
    #: full list build + cumsum to learn that is the dominant cost of the
    #: vectorized path on saturated deep queues.  Instance-overridable so
    #: tests can force the vectorized path on small queues.
    batch_min_queue: int = 32

    def _fork_into(self, clone: Scheduler) -> None:
        pass  # no state beyond the base queue/running bookkeeping

    def _schedule_pass(self, now: float) -> list[Job]:
        queue = self._queue
        if not queue:
            return []
        free = self._machine().free_procs
        if self._queue_is_sorted:
            # The queue IS the priority order: count the fitting prefix
            # and take it in one slice instead of copy + per-job removal.
            if (
                self.use_batch_claims
                and queue[0].procs <= free
                and len(queue) >= self.batch_min_queue
            ):
                count = fitting_prefix_count([job.procs for job in queue], free)
            else:
                count = 0
                for job in queue:
                    procs = job.procs
                    if procs > free:
                        break  # head of queue blocks; no skipping ever
                    free -= procs
                    count += 1
            return self._pop_queue_prefix(count) if count else []
        started: list[Job] = []
        for job in self.priority.sort(queue, now):
            if job.procs > free:
                break  # head of queue blocks; no skipping ever
            self._dequeue(job)
            started.append(job)
            free -= job.procs
        return started

    def poke(self, now: float) -> list[Job]:
        # Withdrawing the blocking head can unblock the whole queue.
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

"""Scheduling disciplines: no-backfill, conservative, EASY, selective."""

from repro.sched.backfill.nobf import FCFSScheduler
from repro.sched.backfill.conservative import ConservativeScheduler
from repro.sched.backfill.easy import EasyScheduler
from repro.sched.backfill.selective import SelectiveScheduler

__all__ = [
    "FCFSScheduler",
    "ConservativeScheduler",
    "EasyScheduler",
    "SelectiveScheduler",
]

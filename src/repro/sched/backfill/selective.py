"""Selective backfilling (the paper's Section 6 proposal).

The paper's conclusion observes that conservative backfilling is
*non-selectively* generous with reservations (limiting backfill
opportunity) while EASY is non-selectively stingy (unbounded worst-case
delay for jobs that cannot backfill), and proposes a middle ground:

    "jobs do not get reservation until their expected slowdown exceeds some
    threshold, whereupon they get a reservation ... few jobs should have
    reservations at any time, but the most needy of jobs get assured
    reservations."

This scheduler implements that proposal (elaborated by the same authors in
"Selective Reservation Strategies for Backfill Job Scheduling", JSSPP
2002).  A queued job's *expected slowdown* is its expansion factor
``(wait + estimate) / estimate``.  Once a job's expansion factor crosses
``xfactor_threshold`` it permanently joins the reserved set; reserved jobs
get earliest-feasible reservations (in priority order) and unreserved jobs
may backfill only into holes that delay no reservation.

With ``xfactor_threshold = 1.0`` every job is reserved on arrival
(conservative-like); with ``xfactor_threshold = inf`` no job ever is
(EASY without even the head reservation, i.e. pure first-fit).  The
ablation experiment sweeps the threshold between these extremes.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sched.base import Scheduler
from repro.sched.priority.policies import xfactor
from repro.sched.profile import Profile
from repro.workload.job import Job

__all__ = ["SelectiveScheduler"]

_EPS = 1e-6


class SelectiveScheduler(Scheduler):
    """Threshold-based selective reservations (paper Section 6)."""

    name = "SEL"

    supports_advance_reservations = True

    def __init__(
        self,
        priority=None,
        *,
        xfactor_threshold: float = 2.0,
        advance_reservations=(),
    ) -> None:
        super().__init__(priority)
        if not (xfactor_threshold >= 1.0 or math.isinf(xfactor_threshold)):
            raise ConfigurationError(
                f"xfactor_threshold must be >= 1 (or inf), got {xfactor_threshold}"
            )
        self.xfactor_threshold = xfactor_threshold
        self.advance_reservations = tuple(advance_reservations)
        self._reserved_ids: set[int] = set()
        self._profile_buffer: Profile | None = None

    def reset(self) -> None:
        self._reserved_ids.clear()
        self._profile_buffer = None

    def _fork_into(self, clone: Scheduler) -> None:
        clone._reserved_ids = set(self._reserved_ids)
        # The buffer is rebuilt from scratch every pass; never shared.
        clone._profile_buffer = None

    # -- internals ------------------------------------------------------------

    def _update_reserved_set(self, now: float) -> None:
        """Promote queued jobs whose expansion factor crossed the threshold.

        Membership is sticky: once needy, always needy, so a promoted job's
        guarantee cannot be revoked by its own reservation reducing its wait.
        """
        for job in self._queue:
            if job.job_id in self._reserved_ids:
                continue
            if xfactor(job, now) >= self.xfactor_threshold:
                self._reserved_ids.add(job.job_id)

    def _schedule_pass(self, now: float) -> list[Job]:
        if not self._queue:
            return []
        machine = self._machine()
        self._update_reserved_set(now)

        # Rebuild the availability profile from scratch each pass (running
        # jobs occupy processors until their estimated completions), but
        # into a reused buffer: one endpoint sweep, no per-event allocation.
        profile = self._profile_buffer
        if profile is None:
            profile = self._profile_buffer = self.profile_factory(
                machine.total_procs, origin=now
            )
        profile.rebuild_into(
            now,
            [(job.procs, start + job.estimate) for job, start in self._running.values()],
        )
        if self.advance_reservations:
            from repro.sched.reservations import carve_reservations

            carve_reservations(profile, self.advance_reservations, now)

        queue = self._ordered_queue(now)
        started: list[Job] = []
        batch = self.use_batch_claims

        # Give the needy jobs reservations, in priority order.
        reservations: dict[int, float] = {}
        needy = [job for job in queue if job.job_id in self._reserved_ids]
        if batch and len(needy) > 1:
            for job, start in zip(
                needy,
                profile.claim_many(
                    [j.procs for j in needy], [j.estimate for j in needy], now
                ),
            ):
                reservations[job.job_id] = start
        else:
            for job in needy:
                reservations[job.job_id] = profile.claim(job.procs, job.estimate, now)

        # One vectorized min_free prefilters the unreserved candidates (see
        # DepthScheduler._schedule_pass: False is definitive because free
        # counts only shrink; True is re-verified once a same-pass reserve
        # has dirtied the profile).
        mins = None
        if batch and len(queue) > len(needy):
            mins = profile.min_free_many([j.estimate for j in queue], now)
        dirty = False

        # Start whatever can run immediately without disturbing reservations.
        committed = 0
        for i, job in enumerate(queue):
            if job.job_id in reservations:
                if reservations[job.job_id] <= now + _EPS and self._machine_fits(
                    job, committed
                ):
                    self._dequeue(job)
                    started.append(job)
                    self._reserved_ids.discard(job.job_id)
                    committed += job.procs
            else:
                if mins is not None:
                    if mins[i] < job.procs:
                        continue
                    fits_profile = not dirty or (
                        profile.min_free(now, job.estimate) >= job.procs
                    )
                else:
                    fits_profile = profile.min_free(now, job.estimate) >= job.procs
                if fits_profile and self._machine_fits(job, committed):
                    profile.reserve(job.procs, now, job.estimate)
                    dirty = True
                    self._dequeue(job)
                    started.append(job)
                    committed += job.procs
        return started

    # -- scheduler API ----------------------------------------------------------

    def cancel(self, job: Job, now: float) -> None:
        self._dequeue(job)
        self._reserved_ids.discard(job.job_id)

    def poke(self, now: float) -> list[Job]:
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

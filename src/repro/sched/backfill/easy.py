"""Aggressive (EASY) backfilling (Lifka 1995; Skovira et al. 1996).

Only the job at the head of the priority queue holds a reservation.  At
every scheduling event:

1. Start jobs in priority order while they fit.
2. If the head is blocked, compute its *shadow time* — the earliest time
   enough processors will be free, assuming running jobs hold their
   processors until their **estimated** completions — and the *extra*
   processors left over once the head starts.
3. Walk the rest of the queue in priority order and start (backfill) any
   job that fits now and either (a) will finish by the shadow time, or
   (b) uses no more than the extra processors.  Neither kind can delay the
   head's reserved start.

Because later jobs get no reservation at all, a wide job can be overtaken
indefinitely until it reaches the head — the source of the unbounded
worst-case turnaround the paper reports in Tables 4 and 7.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sched.base import Scheduler
from repro.sched.profile import finishes_by_mask, fits_mask
from repro.workload.job import Job

__all__ = ["EasyScheduler"]

_EPS = 1e-9


class EasyScheduler(Scheduler):
    """EASY / aggressive backfilling with a pluggable priority policy."""

    name = "EASY"

    #: Reuse the (shadow, extra) pair across events that change neither the
    #: running set nor the blocked head.  Safe because a running job always
    #: has ``start + estimate > now`` (runtimes are capped at estimates and
    #: releases are processed before scheduler reactions), so the shadow is
    #: a function of (head, free, running set) only — not of ``now``.
    #: Disabled by ``configure_reference_kernel`` for differential runs.
    use_shadow_cache: bool = True

    #: Class-level default so the invalidation hooks work pre-bind().
    _shadow_cache: tuple[tuple[int, int], tuple[float, int]] | None = None

    #: Candidate count from which the vectorized backfill prefilter pays
    #: for its array setup.  The scalar scan costs ~0.25us per candidate,
    #: while the mask path fronts two list builds + array conversions per
    #: pass — measured on deep-queue CTC sweeps the masks only pull ahead
    #: beyond ~10^2 candidates, so the paper-scale queues (40-110 deep)
    #: deliberately stay scalar.  Instance-overridable so differential
    #: tests can force the mask path on small queues.
    batch_min_candidates: int = 128

    def reset(self) -> None:
        # (head_job_id, free_procs) -> (shadow, extra)
        self._shadow_cache: tuple[tuple[int, int], tuple[float, int]] | None = None

    def _fork_into(self, clone: Scheduler) -> None:
        # The shadow memo is a pure cache keyed on state the clone shares;
        # dropping it is always safe and the first pass rebuilds it.
        clone._shadow_cache = None

    def notify_started(self, job: Job, now: float) -> None:
        super().notify_started(job, now)
        self._shadow_cache = None

    def notify_finished(self, job: Job, now: float) -> None:
        super().notify_finished(job, now)
        self._shadow_cache = None

    def _shadow_cached(
        self,
        head: Job,
        now: float,
        free: int,
        pseudo_running: list[tuple[Job, float]],
        cacheable: bool,
    ) -> tuple[float, int]:
        """Memoized :meth:`_shadow`; only consulted when ``cacheable``
        (no same-pass starts, so ``pseudo_running`` is exactly the
        notified running set the invalidation hooks track)."""
        if not (cacheable and self.use_shadow_cache):
            return self._shadow(head, now, free, pseudo_running)
        key = (head.job_id, free)
        cached = self._shadow_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        result = self._shadow(head, now, free, pseudo_running)
        self._shadow_cache = (key, result)
        return result

    def _shadow(
        self,
        head: Job,
        now: float,
        free: int,
        pseudo_running: list[tuple[Job, float]],
    ) -> tuple[float, int]:
        """Shadow time and extra processors for the blocked ``head``.

        ``pseudo_running`` includes jobs started earlier in this same pass.
        Running jobs are assumed to release processors at ``start +
        estimate``; with estimates always >= actual runtimes this is a safe
        (conservative) bound, so the head can never be delayed past the
        shadow by a backfill decision.
        """
        releases = sorted(
            (max(start + job.estimate, now), job.procs)
            for job, start in pseudo_running
        )
        available = free
        for finish, procs in releases:
            available += procs
            if available >= head.procs:
                return finish, available - head.procs
        raise SchedulingError(
            f"{self.name}: job {head.job_id} ({head.procs} procs) can never "
            f"start — machine too small or accounting bug"
        )

    def _schedule_pass(self, now: float) -> list[Job]:
        machine = self._machine()
        free = machine.free_procs
        started: list[Job] = []

        queue = self._ordered_queue(now)

        # Phase 1: start in priority order while the head fits.
        while queue and queue[0].procs <= free:
            job = queue.pop(0)
            self._dequeue(job)
            started.append(job)
            free -= job.procs
        if not queue:
            return started

        # Phase 2: the head is blocked; give it the one reservation.
        head = queue[0]
        pseudo_running = list(self._running.values()) + [
            (job, now) for job in started
        ]
        shadow, extra = self._shadow_cached(
            head, now, free, pseudo_running, cacheable=not started
        )

        # Phase 3: backfill the remainder of the queue in priority order.
        candidates = queue[1:]
        if self.use_batch_claims and len(candidates) >= self.batch_min_candidates:
            # One mask evaluation prefilters the whole queue: ``free`` and
            # ``extra`` only shrink as backfills start, so a candidate that
            # fails against their *initial* values fails at its turn in the
            # scalar scan too, and the shadow test doesn't depend on the
            # scan at all.  Survivors re-check against the live free/extra,
            # exactly as the scalar loop would.
            procs = [job.procs for job in candidates]
            by_shadow = finishes_by_mask(
                now, [job.estimate for job in candidates], shadow
            )
            admit = fits_mask(procs, free) & (by_shadow | fits_mask(procs, extra))
            for i in admit.nonzero()[0].tolist():
                job = candidates[i]
                if job.procs > free:
                    continue
                if by_shadow[i] or job.procs <= extra:
                    self._dequeue(job)
                    started.append(job)
                    free -= job.procs
                    if not by_shadow[i]:
                        extra -= job.procs
            return started
        for job in candidates:
            if job.procs > free:
                continue
            finishes_by_shadow = now + job.estimate <= shadow + _EPS
            if finishes_by_shadow or job.procs <= extra:
                self._dequeue(job)
                started.append(job)
                free -= job.procs
                if not finishes_by_shadow:
                    extra -= job.procs
        return started

    def poke(self, now: float) -> list[Job]:
        # A withdrawn head hands its reservation to the next job.
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

"""Slack-based backfilling (Talby & Feitelson 1999, cited by the paper).

A middle ground between conservative and EASY along a different axis than
selective backfilling: *every* job holds a reservation (as in
conservative), but reservations are soft — each may slip by a bounded
*slack* proportional to the job's estimate.  A backfill is admitted only
if, after re-planning, every queued job still starts before

    ``deadline = arrival-time guarantee + slack_factor x estimate``.

``slack_factor = 0`` never admits a delaying backfill — the schedule then
coincides exactly with conservative backfilling in ``repack`` mode under
FCFS (verified by tests); large factors approach unconstrained first-fit.

Like every replanning scheduler, the deadline gates *admission decisions*
against the information available at that moment: as early completions
re-shape the plan, a job's planned start can still drift past the deadline
computed at its arrival (the same statistical — not hard — bound as
conservative repack; see ConservativeScheduler's docstring).

Implementation: the schedule is re-planned (FCFS earliest-feasible, like
conservative's repack) at every event.  A candidate that cannot start
inside the current plan is *tentatively* started and the plan rebuilt; if
any deadline breaks, the candidate is rejected and the plan restored.
Each admission test costs one repack, so candidate scanning is capped at
``max_candidates`` per pass to bound the worst case — a documented
engineering concession (production slack schedulers bound their scan the
same way).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sched.base import Scheduler
from repro.sched.profile import Profile
from repro.workload.job import Job

__all__ = ["SlackScheduler"]

_EPS = 1e-6


class SlackScheduler(Scheduler):
    """Soft-reservation backfilling with bounded slippage."""

    name = "SLACK"

    def __init__(
        self,
        priority=None,
        *,
        slack_factor: float = 1.0,
        max_candidates: int = 16,
    ) -> None:
        super().__init__(priority)
        if slack_factor < 0:
            raise ConfigurationError(f"slack_factor must be >= 0, got {slack_factor}")
        if max_candidates < 1:
            raise ConfigurationError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.slack_factor = slack_factor
        self.max_candidates = max_candidates
        self._deadline: dict[int, float] = {}
        self._profile_buffer: Profile | None = None

    def reset(self) -> None:
        self._deadline.clear()
        self._profile_buffer = None

    def _fork_into(self, clone: Scheduler) -> None:
        clone._deadline = dict(self._deadline)
        # The buffer is rebuilt from scratch every pass; never shared.
        clone._profile_buffer = None

    # -- planning helpers ------------------------------------------------------

    def _running_profile(self, now: float, extra: list[tuple[Job, float]]) -> Profile:
        """Occupancy profile of the running set (+``extra`` tentative starts).

        Rebuilds into one reused buffer: every admission test costs a
        replan, so no plan or trial profile outlives the next call.
        """
        machine = self._machine()
        occupancy = [
            (job.procs, start + job.estimate)
            for job, start in list(self._running.values()) + extra
        ]
        profile = self._profile_buffer
        if profile is None:
            profile = self._profile_buffer = self.profile_factory(
                machine.total_procs, origin=now
            )
        profile.rebuild_into(now, occupancy)
        return profile

    def _plan(
        self, now: float, profile: Profile, jobs: list[Job]
    ) -> dict[int, float]:
        """FCFS earliest-feasible plan for ``jobs`` on ``profile``.

        Mutates the given profile; callers rebuild it before each call.
        """
        ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if self.use_batch_claims and len(ordered) > 1:
            starts = profile.claim_many(
                [j.procs for j in ordered], [j.estimate for j in ordered], now
            )
            return {job.job_id: start for job, start in zip(ordered, starts)}
        plan: dict[int, float] = {}
        for job in ordered:
            plan[job.job_id] = profile.claim(job.procs, job.estimate, now)
        return plan

    def _deadlines_met(self, plan: dict[int, float]) -> bool:
        return all(
            plan[job_id] <= self._deadline[job_id] + _EPS for job_id in plan
        )

    # -- the scheduling pass ------------------------------------------------------

    def _schedule_pass(self, now: float) -> list[Job]:
        if not self._queue:
            return []
        started: list[Job] = []
        pseudo_running: list[tuple[Job, float]] = []

        def current_plan() -> dict[int, float]:
            waiting = [j for j in self._queue]
            return self._plan(now, self._running_profile(now, pseudo_running), waiting)

        plan = current_plan()

        # Phase 1: start everything the plan schedules for right now.
        progressed = True
        while progressed:
            progressed = False
            for job in list(self._queue):
                committed = sum(j.procs for j, _ in pseudo_running)
                if plan.get(
                    job.job_id, math.inf
                ) <= now + _EPS and self._machine_fits(job, committed):
                    self._dequeue(job)
                    started.append(job)
                    pseudo_running.append((job, now))
                    self._deadline.pop(job.job_id, None)
                    progressed = True
            if progressed:
                plan = current_plan()

        # Phase 2: slack-checked backfilling in priority order.
        candidates = self.priority.sort(self._queue, now)[: self.max_candidates]
        for job in candidates:
            if job.procs > self._machine().free_procs - sum(
                j.procs for j, _ in pseudo_running
            ):
                continue
            tentative = [j for j in self._queue if j.job_id != job.job_id]
            trial_profile = self._running_profile(
                now, pseudo_running + [(job, now)]
            )
            trial_plan = self._plan(now, trial_profile, tentative)
            if self._deadlines_met(trial_plan):
                self._dequeue(job)
                started.append(job)
                pseudo_running.append((job, now))
                self._deadline.pop(job.job_id, None)
        return started

    # -- scheduler API ----------------------------------------------------------

    def cancel(self, job: Job, now: float) -> None:
        self._dequeue(job)
        self._deadline.pop(job.job_id, None)

    def poke(self, now: float) -> list[Job]:
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        # The arrival-time guarantee anchors the job's deadline.
        profile = self._running_profile(now, [])
        waiting = list(self._queue) + [job]
        plan = self._plan(now, profile, waiting)
        guarantee = plan[job.job_id]
        self._deadline[job.job_id] = guarantee + self.slack_factor * job.estimate
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

"""Reservation-depth backfilling: the EASY ↔ conservative continuum.

The paper frames conservative and EASY as opposite poles: reservations
for *everybody* vs for the *head only*.  Production schedulers (Maui's
``RESERVATIONDEPTH``) expose the spectrum in between: the first K jobs of
the priority queue hold reservations, everyone else backfills around
them.

* ``depth = 1`` behaves like EASY (single reservation; the backfill
  admission test is the availability profile rather than EASY's
  shadow/extra pair, so schedules can differ in edge cases — the profile
  also sees the hole *after* the head's estimated completion);
* ``depth >= queue length`` is exactly selective backfilling at threshold
  1.0, i.e. conservative repack (verified by tests).

Implementation mirrors :class:`~repro.sched.backfill.selective.
SelectiveScheduler`: the availability profile is rebuilt from the running
set at every scheduling event, the top-K priority jobs claim
earliest-feasible reservations, and the rest may start only where the
profile shows room.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sched.base import Scheduler
from repro.sched.profile import Profile
from repro.workload.job import Job

__all__ = ["DepthScheduler"]

_EPS = 1e-6


class DepthScheduler(Scheduler):
    """Reservations for the first ``depth`` queued jobs (see module docs)."""

    name = "DEPTH"

    supports_advance_reservations = True

    def __init__(self, priority=None, *, depth: int = 1, advance_reservations=()) -> None:
        super().__init__(priority)
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.advance_reservations = tuple(advance_reservations)
        self._profile_buffer: Profile | None = None

    def reset(self) -> None:
        self._profile_buffer = None

    def _fork_into(self, clone: Scheduler) -> None:
        # The buffer is rebuilt from scratch every pass; never shared.
        clone._profile_buffer = None

    def describe(self) -> str:
        return f"{self.name}({self.priority.name}, k={self.depth})"

    def _schedule_pass(self, now: float) -> list[Job]:
        if not self._queue:
            return []
        machine = self._machine()
        # The plan is rebuilt from scratch each pass, but into a reused
        # buffer: one endpoint sweep, no per-event allocation.
        profile = self._profile_buffer
        if profile is None:
            profile = self._profile_buffer = self.profile_factory(
                machine.total_procs, origin=now
            )
        profile.rebuild_into(
            now,
            [(job.procs, start + job.estimate) for job, start in self._running.values()],
        )
        if self.advance_reservations:
            from repro.sched.reservations import carve_reservations

            carve_reservations(profile, self.advance_reservations, now)
        queue = self._ordered_queue(now)
        started: list[Job] = []
        batch = self.use_batch_claims

        reservations: dict[int, float] = {}
        head = queue[: self.depth]
        if batch and len(head) > 1:
            for job, start in zip(
                head,
                profile.claim_many(
                    [j.procs for j in head], [j.estimate for j in head], now
                ),
            ):
                reservations[job.job_id] = start
        else:
            for job in head:
                reservations[job.job_id] = profile.claim(job.procs, job.estimate, now)

        # One vectorized min_free over the post-claim profile prefilters
        # the unreserved backfill candidates: free counts only shrink as
        # this pass reserves, so a failing window here is definitively
        # infeasible and the job needs no per-job kernel call at all.  A
        # passing window is exact until the first same-pass reserve
        # (``dirty``), after which it is re-verified scalar-wise.
        mins = None
        if batch and len(queue) > len(head):
            mins = profile.min_free_many([j.estimate for j in queue], now)
        dirty = False

        committed = 0
        for i, job in enumerate(queue):
            if job.job_id in reservations:
                if reservations[job.job_id] <= now + _EPS and self._machine_fits(
                    job, committed
                ):
                    self._dequeue(job)
                    started.append(job)
                    committed += job.procs
            else:
                if mins is not None:
                    if mins[i] < job.procs:
                        continue
                    fits_profile = not dirty or (
                        profile.min_free(now, job.estimate) >= job.procs
                    )
                else:
                    fits_profile = profile.min_free(now, job.estimate) >= job.procs
                if fits_profile and self._machine_fits(job, committed):
                    profile.reserve(job.procs, now, job.estimate)
                    dirty = True
                    self._dequeue(job)
                    started.append(job)
                    committed += job.procs
        return started

    def poke(self, now: float) -> list[Job]:
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

"""Multi-queue (class-based) scheduling: the pre-backfilling alternative.

Before backfilling became standard, production centers (including the
CTC's LoadLeveler configuration the paper's trace comes from) controlled
long-job monopolization with *job classes*: separate queues by estimated
runtime, each capped at a share of the machine.  A short job never waits
behind a long one because they live in different queues; the cost is
internal fragmentation of the caps.

:class:`MultiQueueScheduler` implements that discipline: queues are
defined by ascending estimate boundaries, each with a processor cap;
within a queue service is strict FCFS (by the configured priority), and a
blocked queue head blocks only *its own class*.  Caps may oversubscribe
the machine (sharing) or partition it exactly (isolation).

This is a baseline for the paper's story, not a backfilling scheme: it
shows what the job classes achieve on the SW/LN categories *without*
moving any job past another, so the gain backfilling adds on top is
visible.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sched.base import Scheduler
from repro.workload.job import Job

__all__ = ["MultiQueueScheduler", "QueueClass"]


class QueueClass:
    """One job class: estimates up to ``max_estimate``, capped processors."""

    __slots__ = ("name", "max_estimate", "proc_cap")

    def __init__(self, name: str, max_estimate: float, proc_cap: int) -> None:
        if max_estimate <= 0:
            raise ConfigurationError(
                f"class {name!r}: max_estimate must be > 0, got {max_estimate}"
            )
        if proc_cap <= 0:
            raise ConfigurationError(
                f"class {name!r}: proc_cap must be > 0, got {proc_cap}"
            )
        self.name = name
        self.max_estimate = max_estimate
        self.proc_cap = proc_cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueueClass({self.name!r}, <= {self.max_estimate}s, cap {self.proc_cap})"


class MultiQueueScheduler(Scheduler):
    """Class-based queues with per-class processor caps (see module docs).

    ``classes`` must be ordered by ascending ``max_estimate``; the last
    class's bound is treated as infinite so every job has a home.  The
    default configuration mirrors a typical three-class SP2 setup scaled
    to the machine at bind time: short (<= 1 h) may use the whole machine,
    medium (<= 6 h) half, long the remaining half.
    """

    name = "MQ"

    def __init__(self, priority=None, *, classes: list[QueueClass] | None = None) -> None:
        super().__init__(priority)
        self._explicit_classes = classes
        self.classes: list[QueueClass] = classes or []
        if classes:
            self._validate_classes(classes)

    @staticmethod
    def _validate_classes(classes: list[QueueClass]) -> None:
        if not classes:
            raise ConfigurationError("at least one queue class is required")
        bounds = [c.max_estimate for c in classes]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                "queue classes must have strictly ascending max_estimate"
            )

    def _fork_into(self, clone: Scheduler) -> None:
        # QueueClass instances are never mutated after construction, so a
        # fresh list sharing them is a full copy.
        clone.classes = list(self.classes)

    def reset(self) -> None:
        if self._explicit_classes is None:
            # Non-rejecting defaults: the catch-all class spans the machine
            # so no job is unschedulable; the medium class is mildly capped
            # (the isolation a site wants comes from explicit classes).
            total = self._machine().total_procs
            self.classes = [
                QueueClass("short", 3_600.0, total),
                QueueClass("medium", 21_600.0, max(3 * total // 4, 1)),
                QueueClass("long", math.inf, total),
            ]

    # -- internals ------------------------------------------------------------

    def class_of(self, job: Job) -> int:
        """Class index for a job: by estimate, escalating past narrow caps.

        The job joins the first class whose estimate bound admits it *and*
        whose processor cap can ever fit it; a job wider than its natural
        class's cap escalates to the next (longer) class rather than
        head-blocking a queue it can never run in.  A job no class can fit
        is a configuration error (production sites reject the submission).
        """
        base = None
        for index, cls in enumerate(self.classes):
            if job.estimate <= cls.max_estimate or index == len(self.classes) - 1:
                base = index
                break
        assert base is not None
        for index in range(base, len(self.classes)):
            if job.procs <= self.classes[index].proc_cap:
                return index
        raise ConfigurationError(
            f"job {job.job_id} ({job.procs} procs, est {job.estimate}s) is "
            "wider than every eligible class cap"
        )

    def _class_usage(self) -> list[int]:
        usage = [0] * len(self.classes)
        for job, _ in self._running.values():
            usage[self.class_of(job)] += job.procs
        return usage

    def _schedule_pass(self, now: float) -> list[Job]:
        machine = self._machine()
        free = machine.free_procs
        usage = self._class_usage()
        started: list[Job] = []

        per_class: list[list[Job]] = [[] for _ in self.classes]
        for job in self._ordered_queue(now):
            per_class[self.class_of(job)].append(job)

        for index, queue in enumerate(per_class):
            cap = self.classes[index].proc_cap
            for job in queue:
                if job.procs > free or usage[index] + job.procs > cap:
                    break  # this class's head blocks only this class
                self._dequeue(job)
                started.append(job)
                free -= job.procs
                usage[index] += job.procs
        return started

    # -- scheduler API ------------------------------------------------------------

    def poke(self, now: float) -> list[Job]:
        return self._schedule_pass(now)

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        self._enqueue(job)
        return self._schedule_pass(now)

    def on_finish(self, job: Job, now: float) -> list[Job]:
        return self._schedule_pass(now)

"""Conservative backfilling (Mu'alem & Feitelson 2001).

Every job receives a start-time *reservation* the moment it arrives, at the
earliest point in the availability profile where its
``procs x estimated-runtime`` rectangle fits without moving any existing
reservation.  A later-arriving job may therefore "backfill" into an earlier
hole, but never at the cost of delaying a previously queued job — the
defining guarantee of the scheme.

When a job completes *early* (actual runtime < estimate) a hole opens in
the profile.  Following the paper's description (Section 4.1), queued jobs
are then reconsidered **in priority order**: each may move its reservation
earlier if a better slot now exists.  A reservation is never moved later,
preserving the start-time guarantee; this is also why, with exact user
estimates, all priority policies produce the *identical* schedule — no
early completions means no holes, so the priority order is never consulted
(the paper's priority-equivalence observation, verified by our tests).
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sched.base import Scheduler
from repro.sched.profile import Profile
from repro.workload.job import Job

__all__ = ["ConservativeScheduler"]

_EPS = 1e-6


class ConservativeScheduler(Scheduler):
    """Reservation-per-job backfilling with a pluggable priority policy.

    ``compression`` selects what happens when an early completion opens a
    hole in the profile:

    * ``"repack"`` (default, the paper's behaviour) — the whole set of
      queued reservations is rebuilt against the *current* machine state,
      in priority order; jobs whose fresh reservation is *now* start
      immediately.  Re-anchoring reservations to the present is what makes
      them act as the near-term "roofs" the paper describes: they block
      later jobs from backfilling easily, which is exactly why conservative
      deteriorates under inaccurate estimates (paper Section 5.2).  Note
      that a rebuilt reservation can land *later* than the one given at
      arrival — once another job's occupancy has shifted earlier, an old
      guarantee window may be genuinely infeasible — so repack bounds delay
      statistically (the paper's Tables 4/7) rather than as a hard
      guarantee.  The priority order is consulted only on early
      completions, so with exact estimates all priorities still produce
      identical schedules (the paper's Section 4.1 equivalence).
    * ``"startonly"`` — queued jobs are considered for an immediate start
      into the hole, in priority order; all untouched reservations keep
      their original (stale, estimate-inflated) positions.  An ablation:
      stale far-future reservations barely constrain the near term, so this
      variant behaves like an aggressive greedy packer.
    * ``"full"`` — like ``"startonly"`` but jobs that cannot start now may
      still move their future reservation earlier (never later).
    * ``"none"`` — holes are released but never refilled early; jobs start
      only at their original guaranteed times.  Lower bound for ablations.
    """

    name = "CONS"

    supports_advance_reservations = True

    COMPRESSION_MODES = ("none", "startonly", "full", "repack")

    def __init__(
        self,
        priority=None,
        *,
        compression: str = "repack",
        advance_reservations=(),
    ) -> None:
        super().__init__(priority)
        if compression not in self.COMPRESSION_MODES:
            raise SchedulingError(
                f"unknown compression mode {compression!r}; "
                f"expected one of {self.COMPRESSION_MODES}"
            )
        self.compression = compression
        self.advance_reservations = tuple(advance_reservations)
        self._profile: Profile | None = None
        self._reservation_start: dict[int, float] = {}
        self._running_resv_end: dict[int, float] = {}

    def reset(self) -> None:
        self._profile = None
        self._reservation_start.clear()
        self._running_resv_end.clear()

    def _fork_into(self, clone: Scheduler) -> None:
        clone._reservation_start = dict(self._reservation_start)
        clone._running_resv_end = dict(self._running_resv_end)
        clone._profile = None if self._profile is None else self._profile.fork()

    # -- internals ---------------------------------------------------------------

    def _profile_at(self, now: float) -> Profile:
        if self._profile is None:
            self._profile = self.profile_factory(self._machine().total_procs, origin=now)
            from repro.sched.reservations import carve_reservations

            carve_reservations(self._profile, self.advance_reservations, now)
        else:
            self._profile.advance(now)
        return self._profile

    def _start_now(self, job: Job, now: float, started: list[Job]) -> None:
        """Move a job whose reservation is due from queued to started.

        Its profile usage [now, now + estimate) stays in place: it models
        the running job's processor occupancy through its estimate.  Timer
        wakeups fire at the exact reservation floats, so a due job's
        reservation normally equals ``now`` exactly; if it ever differs
        (which would desynchronize profile and machine accounting) the
        reservation tail is explicitly re-aligned — loudly failing rather
        than silently corrupting if the shifted slot does not fit.
        """
        started.append(job)
        resv_start = self._reservation_start.pop(job.job_id, None)
        if resv_start is not None and resv_start != now and self._profile is not None:
            remaining = resv_start + job.estimate - now
            if remaining > 0:
                self._profile.release(job.procs, now, remaining)
            self._profile.reserve(job.procs, now, job.estimate)
        self._running_resv_end[job.job_id] = now + job.estimate

    def cancel(self, job: Job, now: float) -> None:
        """Withdraw a queued job and free its reservation (no pass —
        the grid engine calls :meth:`poke` after all withdrawals)."""
        self._dequeue(job)
        start = self._reservation_start.pop(job.job_id, None)
        if start is None:
            return
        if start < now - _EPS:
            raise SchedulingError(
                f"{self.name}: cancelled job {job.job_id} held a stale "
                f"reservation at {start} < now={now}"
            )
        profile = self._profile_at(now)
        profile.release(job.procs, start, job.estimate)

    def poke(self, now: float) -> list[Job]:
        """Refill holes after withdrawals using the configured compression."""
        started: list[Job] = []
        if self.compression == "repack":
            self._repack(now, started)
        elif self.compression in ("startonly", "full"):
            self._profile_at(now)
            self._backfill_pass(now, started, move_future=self.compression == "full")
        else:
            self._profile_at(now)
            self._start_due(now, started)
        return started

    def reservation_of(self, job_id: int) -> float:
        """Current guaranteed start time of a queued job (for tests/inspection)."""
        try:
            return self._reservation_start[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id} holds no reservation") from None

    # -- scheduler API ---------------------------------------------------------

    def on_arrival(self, job: Job, now: float) -> list[Job]:
        profile = self._profile_at(now)
        start = profile.claim(job.procs, job.estimate, now)
        started: list[Job] = []
        if start <= now + _EPS and self._machine_fits(job):
            self._start_now(job, now, started)
        else:
            self._enqueue(job)
            self._reservation_start[job.job_id] = start
            self.request_wakeup(start)
        return started

    def on_wakeup(self, now: float) -> list[Job]:
        """A reservation may have come due at a time with no job event."""
        self._profile_at(now)
        started: list[Job] = []
        self._start_due(now, started)
        return started

    def on_finish(self, job: Job, now: float) -> list[Job]:
        resv_end = self._running_resv_end.pop(job.job_id, None)
        if resv_end is None:
            raise SchedulingError(
                f"{self.name}: finished job {job.job_id} has no recorded reservation"
            )
        finished_early = resv_end > now + _EPS
        started: list[Job] = []

        if self.compression == "repack":
            # Repack rebuilds the profile from the surviving running set, so
            # it neither needs nor tolerates an explicit tail release: with
            # several completions at one timestamp, the first repack already
            # dropped the later finishers' occupancy (the engine notifies
            # all releases before any reaction runs).
            if finished_early:
                self._repack(now, started)
            else:
                # Incremental-repack short-circuit: a job that finishes
                # exactly at its estimate releases processors at precisely
                # the horizon the profile already encodes, so rebuilding
                # would reproduce the advanced profile bit for bit.  Skip
                # the rebuild + re-claim entirely and only start the jobs
                # whose reservations are due (DESIGN.md §14) — with exact
                # user estimates (half the paper's grid) NO finish ever
                # repacks.
                self._profile_at(now)
                self._start_due(now, started)
            return started

        profile = self._profile_at(now)
        if finished_early:
            # Open the hole: release the unused tail of the estimate.
            profile.release(job.procs, now, resv_end - now)
        if finished_early and self.compression in ("startonly", "full"):
            self._backfill_pass(now, started, move_future=self.compression == "full")
        else:
            # Even without compression, reservations that are due must start.
            self._start_due(now, started)
        return started

    def _start_due(self, now: float, started: list[Job]) -> None:
        """Start every queued job whose reservation time has arrived."""
        committed = sum(j.procs for j in started)
        for queued in self._ordered_queue(now):
            if self._reservation_start[
                queued.job_id
            ] <= now + _EPS and self._machine_fits(queued, committed):
                self._dequeue(queued)
                self._start_now(queued, now, started)
                committed += queued.procs
        # Re-arm the next pending reservation: the batched repack arms only
        # the *earliest* reservation instead of one timer per queued job
        # (the engine dedupes by exact time, so on the sequential path this
        # is a no-op re-request of an already-armed time).  Consuming the
        # due timer therefore must arm the next one, or later reservations
        # would only be serviced by coincidental job events.
        if self._reservation_start:
            self.request_wakeup(min(self._reservation_start.values()))

    def _repack(self, now: float, started: list[Job]) -> None:
        """Rebuild every queued reservation against the current state.

        The profile is reconstructed from the running jobs' estimated
        remainders, then queued jobs claim earliest-feasible slots in
        priority order.  Jobs whose fresh slot is *now* start immediately
        (their usage stays in the profile as running occupancy).  The
        rebuild reuses the existing profile's arrays (one endpoint sweep,
        no allocation) — repack runs on every early completion, so this is
        the kernel's hottest path.
        """
        machine = self._machine()
        profile = self._profile
        if profile is None:
            profile = self.profile_factory(machine.total_procs, origin=now)
        profile.rebuild_into(
            now,
            [
                (job.procs, self._running_resv_end[job.job_id])
                for job, _ in self._running.values()
            ],
        )
        from repro.sched.reservations import carve_reservations

        carve_reservations(profile, self.advance_reservations, now)
        self._profile = profile
        committed = sum(j.procs for j in started)
        ordered = self._ordered_queue(now)
        starts = None
        if self.use_batch_claims and len(ordered) > 1:
            starts = profile.claim_many(
                [q.procs for q in ordered], [q.estimate for q in ordered], now
            )
        wake = None
        for i, queued in enumerate(ordered):
            if starts is not None:
                start = starts[i]
            else:
                start = profile.claim(queued.procs, queued.estimate, now)
            self._reservation_start[queued.job_id] = start
            if start <= now + _EPS and self._machine_fits(queued, committed):
                if starts is not None and start != now:
                    # _start_now is about to re-align this job's reservation
                    # tail, mutating the profile mid-pass.  The batch claimed
                    # the remaining jobs against the unmutated profile, so
                    # roll those claims back and fall through to per-job
                    # claims that see the re-aligned state, exactly as the
                    # sequential loop would.
                    for later_index in range(i + 1, len(ordered)):
                        later = ordered[later_index]
                        profile.release(
                            later.procs, starts[later_index], later.estimate
                        )
                    starts = None
                self._dequeue(queued)
                self._start_now(queued, now, started)
                committed += queued.procs
            elif starts is None:
                self.request_wakeup(start)
            elif wake is None or start < wake:
                # Batched pass: one timer at the earliest reservation covers
                # the whole queue — _start_due re-arms the next one when it
                # fires, and any repack before then re-plans everything
                # anyway.  (Identical schedules, strictly fewer timer
                # events; see DESIGN.md §14.)
                wake = start
        if wake is not None:
            self.request_wakeup(wake)

    def _backfill_pass(self, now: float, started: list[Job], *, move_future: bool) -> None:
        """Reconsider queued jobs in priority order after a hole opened.

        A job whose rectangle fits immediately starts now.  With
        ``move_future`` (the "full" compression ablation) jobs that cannot
        start may still move their reservation earlier.  Reservations never
        move later, so previously given guarantees survive.
        """
        profile = self._profile_at(now)
        committed = sum(j.procs for j in started)
        for queued in self._ordered_queue(now):
            old_start = self._reservation_start[queued.job_id]
            if old_start < now - _EPS:
                raise SchedulingError(
                    f"{self.name}: stale reservation at {old_start} < now={now} "
                    f"for job {queued.job_id}"
                )
            if old_start <= now + _EPS:
                # Its guaranteed time has arrived; it starts as soon as the
                # machine physically fits it (the next finish re-runs this).
                if self._machine_fits(queued, committed):
                    self._dequeue(queued)
                    self._start_now(queued, now, started)
                    committed += queued.procs
                continue
            profile.release(queued.procs, old_start, queued.estimate)
            new_start = profile.find_start(queued.procs, queued.estimate, now)
            if new_start <= now + _EPS:
                # A due slot the machine cannot physically host yet is no
                # slot: keep the old guarantee rather than a past-dated one.
                if self._machine_fits(queued, committed):
                    chosen = new_start
                else:
                    chosen = old_start
            elif move_future and new_start < old_start - _EPS:
                chosen = new_start
            else:
                chosen = old_start
            profile.reserve(queued.procs, chosen, queued.estimate)
            self._reservation_start[queued.job_id] = chosen
            if chosen <= now + _EPS and self._machine_fits(queued, committed):
                self._dequeue(queued)
                self._start_now(queued, now, started)
                committed += queued.procs
            elif chosen != old_start:
                self.request_wakeup(chosen)

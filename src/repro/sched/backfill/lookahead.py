"""Lookahead backfilling: optimize the backfill *set*, not the scan order.

EASY picks backfill jobs greedily in priority order, which can waste
processors: taking an early 6-proc candidate may exclude a later 4+4 pair
that would have filled the hole exactly.  Shmueli & Feitelson
("Backfilling with lookahead to optimize the packing of parallel jobs",
cited in the paper's bibliography line) replace the greedy scan with an
optimal packing step.  This scheduler implements the core of that idea on
top of the EASY reservation discipline:

1. Start jobs in priority order while they fit (identical to EASY).
2. Compute the blocked head's shadow time and extra processors (identical
   to EASY — the head's reservation is never compromised).
3. Among the candidates that would *finish by the shadow time*, choose the
   subset maximizing the number of processors put to work **right now**
   via a 0/1 knapsack over the free processors (dynamic program,
   vectorized with numpy).  Ties in packed processors are broken towards
   higher-priority jobs by scanning candidates in priority order.
4. Greedily admit remaining candidates into the extra processors (jobs
   that fit beside the head even after it starts), as in EASY.

The admission conditions are exactly EASY's, so every schedule this
produces is also a legal EASY-style schedule — only the chosen backfill
set differs.  The knapsack is O(candidates x free_procs) per scheduling
pass.
"""

from __future__ import annotations

import numpy as np

from repro.sched.backfill.easy import EasyScheduler
from repro.sched.profile import finishes_by_mask, fits_mask
from repro.workload.job import Job

__all__ = ["LookaheadScheduler"]

_EPS = 1e-9


def _max_packing(candidates: list[Job], capacity: int) -> list[Job]:
    """0/1 knapsack: subset of candidates maximizing total procs <= capacity.

    Value equals weight (processors), so the DP maximizes utilized
    processors.  Items are considered in the given (priority) order and
    reconstruction prefers earlier items, which breaks value ties towards
    higher-priority jobs.
    """
    if not candidates or capacity <= 0:
        return []
    sizes = [job.procs for job in candidates]
    # dp[c] = max procs achievable with capacity c
    dp = np.zeros(capacity + 1, dtype=np.int64)
    take = np.zeros((len(sizes), capacity + 1), dtype=bool)
    for index, size in enumerate(sizes):
        if size > capacity:
            continue
        shifted = np.concatenate([np.full(size, -1, dtype=np.int64), dp[:-size] + size])
        better = shifted > dp
        take[index] = better
        dp = np.where(better, shifted, dp)
    # Reconstruct from the full-capacity cell.
    chosen: list[Job] = []
    c = capacity
    for index in range(len(sizes) - 1, -1, -1):
        if c >= 0 and take[index, c]:
            chosen.append(candidates[index])
            c -= sizes[index]
    chosen.reverse()
    return chosen


class LookaheadScheduler(EasyScheduler):
    """EASY with an optimal-packing backfill step (see module docstring)."""

    name = "LOOK"

    def _schedule_pass(self, now: float) -> list[Job]:
        machine = self._machine()
        free = machine.free_procs
        started: list[Job] = []

        queue = self._ordered_queue(now)
        while queue and queue[0].procs <= free:
            job = queue.pop(0)
            self._dequeue(job)
            started.append(job)
            free -= job.procs
        if not queue:
            return started

        head = queue[0]
        pseudo_running = list(self._running.values()) + [(job, now) for job in started]
        shadow, extra = self._shadow_cached(
            head, now, free, pseudo_running, cacheable=not started
        )

        # Partition the remaining queue by which EASY condition applies.
        candidates = queue[1:]
        batch = self.use_batch_claims and len(candidates) >= self.batch_min_candidates
        if batch:
            # Both admission quantities are evaluated in one mask pass: the
            # shadow test is fixed for the pass, and ``free``/``extra`` only
            # shrink, so a mask-False candidate is definitively out (see
            # EasyScheduler._schedule_pass).
            procs = [job.procs for job in candidates]
            by_shadow = finishes_by_mask(
                now, [job.estimate for job in candidates], shadow
            )
            shadow_safe = [
                candidates[i]
                for i in (fits_mask(procs, free) & by_shadow).nonzero()[0].tolist()
            ]
        else:
            by_shadow = None
            shadow_safe = [
                job
                for job in candidates
                if job.procs <= free and now + job.estimate <= shadow + _EPS
            ]
        packed = _max_packing(shadow_safe, free)
        for job in packed:
            self._dequeue(job)
            started.append(job)
            free -= job.procs

        # Second chance for everything not packed: the extra-processor rule
        # (may run past the shadow using processors the head will not need).
        packed_ids = {job.job_id for job in packed}
        if batch:
            admit = fits_mask(procs, free) & (
                by_shadow | fits_mask(procs, extra)
            )
            second_pass = [candidates[i] for i in admit.nonzero()[0].tolist()]
        else:
            second_pass = candidates
        for job in second_pass:
            if job.job_id in packed_ids or job.procs > free:
                continue
            finishes_by_shadow = now + job.estimate <= shadow + _EPS
            if finishes_by_shadow or job.procs <= extra:
                self._dequeue(job)
                started.append(job)
                free -= job.procs
                if not finishes_by_shadow:
                    extra -= job.procs
        return started
